//! The model-building API: variables, constraints, objective.

use std::fmt;

use crate::MilpError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binaries are integers in `[0,1]`).
    Integer,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Less than or equal.
    Le,
    /// Greater than or equal.
    Ge,
    /// Equality.
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's dense index (its position in solution value
    /// vectors and warm starts).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub(crate) name: String,
    pub(crate) kind: VarKind,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
    pub(crate) objective: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConstraintDef {
    pub(crate) name: String,
    /// Terms with coefficients, deduplicated by variable.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A mixed-integer linear program under construction.
///
/// See the crate-level example. Variables carry their objective
/// coefficient at creation; constraints are added afterwards. Solve with
/// [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::InvertedBounds`] if `lower > upper`, or
    /// [`MilpError::NonFiniteValue`] if a bound or the objective
    /// coefficient is NaN (infinite bounds are rejected too: the paper's
    /// ILP is fully bounded, and bounded variables keep the simplex
    /// conversion simple).
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId, MilpError> {
        let name = name.into();
        if !lower.is_finite() || !upper.is_finite() {
            return Err(MilpError::NonFiniteValue(format!("bounds of {name}")));
        }
        if !objective.is_finite() {
            return Err(MilpError::NonFiniteValue(format!(
                "objective coefficient of {name}"
            )));
        }
        if lower > upper {
            return Err(MilpError::InvertedBounds { lower, upper });
        }
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name,
            kind,
            lower,
            upper,
            objective,
        });
        Ok(id)
    }

    /// Adds a binary (0/1) variable with the given objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `objective` is not finite.
    pub fn add_binary(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.add_var(name, VarKind::Integer, 0.0, 1.0, objective)
            .expect("binary bounds are always valid")
    }

    /// Adds a continuous variable.
    ///
    /// # Errors
    ///
    /// See [`Model::add_var`].
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        objective: f64,
    ) -> Result<VarId, MilpError> {
        self.add_var(name, VarKind::Continuous, lower, upper, objective)
    }

    /// Adds a linear constraint `Σ coeff·var (relation) rhs`. Terms with
    /// the same variable are summed.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::UnknownVariable`] for a foreign variable id or
    /// [`MilpError::NonFiniteValue`] for a NaN/infinite coefficient or rhs.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> Result<ConstraintId, MilpError> {
        let name = name.into();
        if !rhs.is_finite() {
            return Err(MilpError::NonFiniteValue(format!("rhs of {name}")));
        }
        let mut dense: Vec<f64> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for (var, coeff) in terms {
            if var.0 >= self.vars.len() {
                return Err(MilpError::UnknownVariable(var.0));
            }
            if !coeff.is_finite() {
                return Err(MilpError::NonFiniteValue(format!(
                    "coefficient of {} in {name}",
                    self.vars[var.0].name
                )));
            }
            if dense.len() <= var.0 {
                dense.resize(var.0 + 1, 0.0);
            }
            // flex-lint: allow(F1): exact structural-zero test on a zero-initialized accumulator
            if dense[var.0] == 0.0 {
                touched.push(var.0);
            }
            dense[var.0] += coeff;
        }
        touched.sort_unstable();
        let terms: Vec<(usize, f64)> = touched
            .into_iter()
            .map(|i| (i, dense[i]))
            // flex-lint: allow(F1): exact-zero sparsity filter; an epsilon would change the model
            .filter(|(_, c)| *c != 0.0)
            .collect();
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(ConstraintDef {
            name,
            terms,
            relation,
            rhs,
        });
        Ok(id)
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer (including binary) variables.
    pub fn integer_count(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .count()
    }

    /// A variable's name.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::UnknownVariable`] for a foreign id.
    pub fn var_name(&self, id: VarId) -> Result<&str, MilpError> {
        self.vars
            .get(id.0)
            .map(|v| v.name.as_str())
            .ok_or(MilpError::UnknownVariable(id.0))
    }

    /// A constraint's name, or `None` for a foreign id.
    pub fn constraint_name(&self, id: ConstraintId) -> Option<&str> {
        self.constraints.get(id.0).map(|c| c.name.as_str())
    }

    /// Evaluates the objective for a full assignment (used by tests and
    /// heuristics).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the variable count.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.vars.len(), "assignment length mismatch");
        self.vars
            .iter()
            .zip(values)
            .map(|(v, x)| v.objective * x)
            .sum()
    }

    /// Checks whether a full assignment satisfies every constraint and
    /// bound within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the variable count.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        assert_eq!(values.len(), self.vars.len(), "assignment length mismatch");
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(i, a)| a * values[i]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_validation() {
        let mut m = Model::new(Sense::Maximize);
        assert!(m
            .add_var("x", VarKind::Continuous, 1.0, 0.0, 0.0)
            .is_err());
        assert!(m
            .add_var("x", VarKind::Continuous, f64::NEG_INFINITY, 0.0, 0.0)
            .is_err());
        assert!(m
            .add_var("x", VarKind::Continuous, 0.0, 1.0, f64::NAN)
            .is_err());
        let id = m.add_var("x", VarKind::Continuous, 0.0, 1.0, 2.0).unwrap();
        assert_eq!(m.var_name(id).unwrap(), "x");
        assert_eq!(m.var_count(), 1);
    }

    #[test]
    fn constraint_merges_duplicate_terms() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x", 1.0);
        let c = m
            .add_constraint("c", vec![(x, 2.0), (x, 3.0)], Relation::Le, 4.0)
            .unwrap();
        assert_eq!(c, ConstraintId(0));
        assert_eq!(m.constraints[0].terms, vec![(0, 5.0)]);
    }

    #[test]
    fn constraint_drops_cancelled_terms() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c", vec![(x, 2.0), (x, -2.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        assert_eq!(m.constraints[0].terms, vec![(1, 1.0)]);
    }

    #[test]
    fn constraint_validation() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x", 1.0);
        assert!(m
            .add_constraint("c", vec![(VarId(9), 1.0)], Relation::Le, 1.0)
            .is_err());
        assert!(m
            .add_constraint("c", vec![(x, f64::INFINITY)], Relation::Le, 1.0)
            .is_err());
        assert!(m
            .add_constraint("c", vec![(x, 1.0)], Relation::Le, f64::NAN)
            .is_err());
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m
            .add_continuous("y", 0.0, 10.0, 1.0)
            .unwrap();
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0)
            .unwrap();
        assert!(m.is_feasible(&[1.0, 4.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 5.0], 1e-9)); // violates c
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[0.0, 11.0], 1e-9)); // bound violation
        assert_eq!(m.objective_value(&[1.0, 4.0]), 5.0);
        assert_eq!(m.integer_count(), 1);
        assert_eq!(m.constraint_count(), 1);
    }
}
