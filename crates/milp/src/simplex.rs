//! Dense two-phase primal simplex with bounded variables.
//!
//! Solves `minimize cᵀx  s.t.  Ax = b,  l ≤ x ≤ u` where every structural
//! variable has finite bounds (slack variables may be unbounded above).
//! Inequality constraints are converted to equalities with slack columns by
//! [`LpProblem::from_model`]; phase 1 starts from an all-artificial basis.
//!
//! Nonbasic variables rest at one of their bounds (the *bounded-variable*
//! rule), so variable upper bounds cost nothing extra in tableau size —
//! important because the placement ILP has hundreds of binaries.

use crate::model::{Model, Relation, Sense, VarKind};
use crate::MilpError;

/// Pricing tolerance: reduced costs within this of zero are "optimal".
const PRICE_EPS: f64 = 1e-9;
/// Pivot-element tolerance.
const PIVOT_EPS: f64 = 1e-9;
/// Feasibility tolerance for phase-1 success and ratio tests.
const FEAS_EPS: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGENERACY_GUARD: u32 = 64;

/// Termination status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for the internal minimize form).
    Unbounded,
    /// Iteration limit hit (numerical trouble); treat as a failed solve.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Termination status; `objective`/`values` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Optimal objective of the *minimize* form.
    pub objective: f64,
    /// Values for all columns (structural first, then slacks).
    pub values: Vec<f64>,
}

/// Where a model variable landed in the LP: a live column, or eliminated
/// as a constant because its effective bounds pin it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColRef {
    /// The variable is LP column `i`.
    Col(usize),
    /// The variable is fixed at this value (folded into RHS/objective).
    Fixed(f64),
}

/// A standard-form LP: minimize over equality rows with bounded columns.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Per-column objective coefficients (minimize).
    pub costs: Vec<f64>,
    /// Per-column lower bounds (finite).
    pub lower: Vec<f64>,
    /// Per-column upper bounds (`f64::INFINITY` allowed).
    pub upper: Vec<f64>,
    /// Sparse equality rows over the columns.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Right-hand sides.
    pub rhs: Vec<f64>,
    /// Number of structural (model) columns at the front.
    pub structural: usize,
    /// Mapping from model variables to LP columns. Fixed variables are
    /// eliminated — this keeps branch-and-bound node LPs small as more
    /// binaries get pinned.
    pub var_map: Vec<ColRef>,
    /// Constant added to the objective (from eliminated variables).
    pub objective_offset: f64,
}

impl LpProblem {
    /// Builds the LP relaxation of a model, with per-variable bound
    /// overrides (used by branch-and-bound; pass the model's own bounds
    /// for the root relaxation). Maximize models are negated into
    /// minimize form; callers flip the objective sign back.
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len()` differs from the model's variable count
    /// or any override is inverted/non-finite.
    pub fn from_model(model: &Model, bounds: &[(f64, f64)]) -> LpProblem {
        Self::build(model, bounds, true)
    }

    /// Like [`LpProblem::from_model`], but never eliminates fixed
    /// variables, so the column layout depends only on the model — not on
    /// which bounds happen to be pinned. A stable layout is what lets a
    /// [`BasisSnapshot`] taken at one branch-and-bound node be re-applied
    /// at another after only the `lower`/`upper` vectors change.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LpProblem::from_model`].
    pub fn from_model_dense(model: &Model, bounds: &[(f64, f64)]) -> LpProblem {
        Self::build(model, bounds, false)
    }

    fn build(model: &Model, bounds: &[(f64, f64)], eliminate: bool) -> LpProblem {
        assert_eq!(bounds.len(), model.var_count(), "bounds length mismatch");
        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        // Map variables to live columns, eliminating fixed ones.
        let mut var_map = Vec::with_capacity(model.var_count());
        let mut costs: Vec<f64> = Vec::new();
        let mut lower: Vec<f64> = Vec::new();
        let mut upper: Vec<f64> = Vec::new();
        let mut objective_offset = 0.0;
        for (v, &(lo, hi)) in model.vars.iter().zip(bounds) {
            assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad bounds");
            // Intersect model bounds with overrides defensively.
            let l = lo.max(v.lower);
            let u = hi.min(v.upper);
            debug_assert!(l <= u + 1e-9, "override disjoint from model bounds");
            if eliminate && u - l < 1e-12 {
                var_map.push(ColRef::Fixed(l));
                objective_offset += sign * v.objective * l;
            } else {
                var_map.push(ColRef::Col(costs.len()));
                costs.push(sign * v.objective);
                lower.push(l);
                upper.push(u);
            }
        }
        let structural = costs.len();
        let mut rows = Vec::with_capacity(model.constraints.len());
        let mut rhs = Vec::with_capacity(model.constraints.len());
        for c in &model.constraints {
            let mut row: Vec<(usize, f64)> = Vec::with_capacity(c.terms.len() + 1);
            let mut b = c.rhs;
            for &(i, a) in &c.terms {
                match var_map[i] {
                    ColRef::Col(col) => row.push((col, a)),
                    ColRef::Fixed(v) => b -= a * v,
                }
            }
            match c.relation {
                Relation::Le => {
                    let slack = costs.len();
                    costs.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    row.push((slack, 1.0));
                }
                Relation::Ge => {
                    let surplus = costs.len();
                    costs.push(0.0);
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                    row.push((surplus, -1.0));
                }
                Relation::Eq => {}
            }
            rows.push(row);
            rhs.push(b);
        }
        LpProblem {
            costs,
            lower,
            upper,
            rows,
            rhs,
            structural,
            var_map,
            objective_offset,
        }
    }

    /// Number of columns (structural + slack).
    pub fn col_count(&self) -> usize {
        self.costs.len()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

struct Tableau {
    /// m × ncols dense matrix, current B⁻¹A.
    tab: Vec<Vec<f64>>,
    /// Basic-variable values per row.
    xb: Vec<f64>,
    /// Column in the basis for each row.
    basis: Vec<usize>,
    status: Vec<ColStatus>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    m: usize,
    ncols: usize,
}

impl Tableau {
    /// Current value of every column.
    fn values(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .status
            .iter()
            .enumerate()
            .map(|(j, s)| match s {
                ColStatus::Basic => 0.0,
                ColStatus::AtLower => self.lower[j],
                ColStatus::AtUpper => self.upper[j],
            })
            .collect();
        for (i, &b) in self.basis.iter().enumerate() {
            v[b] = self.xb[i];
        }
        v
    }

    /// Runs the primal simplex for the given cost vector. Returns
    /// `Ok(objective)` at optimality. Each pivot or bound flip adds one
    /// to `iters`.
    fn optimize(&mut self, costs: &[f64], max_iters: u64, iters: &mut u64) -> Result<f64, LpStatus> {
        let mut degenerate_streak: u32 = 0;
        for _ in 0..max_iters {
            // Basic costs, then reduced costs d_j = c_j − c_Bᵀ·tab[:,j].
            let cb: Vec<f64> = self.basis.iter().map(|&b| costs[b]).collect();
            let mut entering: Option<(usize, f64, f64)> = None; // (col, |d|, sigma)
            let use_bland = degenerate_streak >= DEGENERACY_GUARD;
            for j in 0..self.ncols {
                if self.status[j] == ColStatus::Basic {
                    continue;
                }
                if self.upper[j] - self.lower[j] < PIVOT_EPS {
                    continue; // fixed column can never improve
                }
                let mut d = costs[j];
                for i in 0..self.m {
                    if cb[i] != 0.0 {
                        d -= cb[i] * self.tab[i][j];
                    }
                }
                let sigma = match self.status[j] {
                    ColStatus::AtLower if d < -PRICE_EPS => 1.0,
                    ColStatus::AtUpper if d > PRICE_EPS => -1.0,
                    _ => continue,
                };
                if use_bland {
                    entering = Some((j, d.abs(), sigma));
                    break;
                }
                match entering {
                    Some((_, best, _)) if d.abs() <= best => {}
                    _ => entering = Some((j, d.abs(), sigma)),
                }
            }
            let Some((j, _, sigma)) = entering else {
                // Optimal: compute objective.
                let obj = self
                    .values()
                    .iter()
                    .zip(costs)
                    .map(|(x, c)| x * c)
                    .sum::<f64>();
                return Ok(obj);
            };
            *iters += 1;

            // Ratio test: how far can x_j move (by t ≥ 0 in direction sigma)?
            let own_limit = self.upper[j] - self.lower[j]; // bound flip distance
            let mut t_max = own_limit;
            let mut leaving: Option<(usize, ColStatus)> = None; // (row, bound hit)
            for i in 0..self.m {
                let a = sigma * self.tab[i][j];
                if a > PIVOT_EPS {
                    // Basic value decreases toward its lower bound.
                    let room = self.xb[i] - self.lower[self.basis[i]];
                    let t = room.max(0.0) / a;
                    if t < t_max {
                        t_max = t;
                        leaving = Some((i, ColStatus::AtLower));
                    }
                } else if a < -PIVOT_EPS {
                    // Basic value increases toward its upper bound.
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        let room = ub - self.xb[i];
                        let t = room.max(0.0) / (-a);
                        if t < t_max {
                            t_max = t;
                            leaving = Some((i, ColStatus::AtUpper));
                        }
                    }
                }
            }
            if t_max.is_infinite() {
                return Err(LpStatus::Unbounded);
            }
            if t_max <= FEAS_EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            // Apply the move to basic values.
            for i in 0..self.m {
                self.xb[i] -= sigma * t_max * self.tab[i][j];
            }
            match leaving {
                None => {
                    // Bound flip: j moves to its opposite bound.
                    self.status[j] = match self.status[j] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        ColStatus::Basic => unreachable!("entering var was nonbasic"),
                    };
                }
                Some((row, bound_hit)) => {
                    let start = match self.status[j] {
                        ColStatus::AtLower => self.lower[j],
                        ColStatus::AtUpper => self.upper[j],
                        ColStatus::Basic => unreachable!("entering var was nonbasic"),
                    };
                    let new_value = start + sigma * t_max;
                    let leaving_col = self.basis[row];
                    self.status[leaving_col] = bound_hit;
                    // Snap the leaving variable exactly onto its bound.
                    self.basis[row] = j;
                    self.status[j] = ColStatus::Basic;
                    self.xb[row] = new_value;
                    self.pivot(row, j);
                }
            }
        }
        Err(LpStatus::IterationLimit)
    }

    /// Bounded-variable dual simplex: drives out basic variables that
    /// violate their bounds, starting from a (near) dual-feasible basis —
    /// exactly the state a parent node's optimal basis is in after
    /// branch-and-bound tightens one variable's bounds.
    ///
    /// Returns `Ok(())` once every basic variable is within bounds.
    /// `Err(Infeasible)` is a sound infeasibility certificate: the
    /// violated row admits no further movement within the remaining
    /// columns' bounds.
    fn dual_restore(&mut self, costs: &[f64], max_iters: u64, iters: &mut u64) -> Result<(), LpStatus> {
        for _ in 0..max_iters {
            // Leaving row: the worst bound violation among basic vars.
            let mut leave: Option<(usize, f64, f64)> = None; // (row, signed delta, violation)
            for i in 0..self.m {
                let b = self.basis[i];
                let above = self.xb[i] - self.upper[b];
                let below = self.lower[b] - self.xb[i];
                let viol = above.max(below);
                if viol > FEAS_EPS {
                    // delta = xb − violated bound (positive above, negative below).
                    let delta = if above >= below { above } else { -below };
                    match leave {
                        Some((_, _, best)) if best >= viol => {}
                        _ => leave = Some((i, delta, viol)),
                    }
                }
            }
            let Some((r, delta, _)) = leave else {
                return Ok(()); // primal feasible
            };
            let case_above = delta > 0.0;

            // Entering column: minimizes |reduced cost / pivot| among the
            // columns whose admissible movement reduces the violation
            // (keeps the basis dual feasible); ties prefer a larger
            // pivot magnitude for numerical stability.
            let cb: Vec<f64> = self.basis.iter().map(|&b| costs[b]).collect();
            let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..self.ncols {
                if self.status[j] == ColStatus::Basic {
                    continue;
                }
                if self.upper[j] - self.lower[j] < PIVOT_EPS {
                    continue; // fixed column cannot move
                }
                let a = self.tab[r][j];
                let eligible = if case_above {
                    (self.status[j] == ColStatus::AtLower && a > PIVOT_EPS)
                        || (self.status[j] == ColStatus::AtUpper && a < -PIVOT_EPS)
                } else {
                    (self.status[j] == ColStatus::AtLower && a < -PIVOT_EPS)
                        || (self.status[j] == ColStatus::AtUpper && a > PIVOT_EPS)
                };
                if !eligible {
                    continue;
                }
                let mut d = costs[j];
                for i in 0..self.m {
                    if cb[i] != 0.0 {
                        d -= cb[i] * self.tab[i][j];
                    }
                }
                let ratio = (d / a).abs();
                let better = match enter {
                    None => true,
                    Some((_, br, ba)) => {
                        ratio < br - 1e-12 || (ratio <= br + 1e-12 && a.abs() > ba)
                    }
                };
                if better {
                    enter = Some((j, ratio, a.abs()));
                }
            }
            let Some((j, _, _)) = enter else {
                return Err(LpStatus::Infeasible);
            };
            *iters += 1;

            // Pivot: the entering variable moves by exactly enough to put
            // the leaving variable on its violated bound.
            let step = delta / self.tab[r][j];
            let start = match self.status[j] {
                ColStatus::AtLower => self.lower[j],
                ColStatus::AtUpper => self.upper[j],
                ColStatus::Basic => unreachable!("entering var was nonbasic"),
            };
            for i in 0..self.m {
                if i != r {
                    self.xb[i] -= self.tab[i][j] * step;
                }
            }
            let leaving_col = self.basis[r];
            self.status[leaving_col] = if case_above {
                ColStatus::AtUpper
            } else {
                ColStatus::AtLower
            };
            self.basis[r] = j;
            self.status[j] = ColStatus::Basic;
            self.xb[r] = start + step;
            self.pivot(r, j);
        }
        Err(LpStatus::IterationLimit)
    }

    /// Gauss–Jordan pivot on (row, col).
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.tab[row][col];
        debug_assert!(p.abs() > PIVOT_EPS, "pivot on ~zero element");
        let inv = 1.0 / p;
        for v in &mut self.tab[row] {
            *v *= inv;
        }
        let pivot_row = self.tab[row].clone();
        for (i, r) in self.tab.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let f = r[col];
            if f != 0.0 {
                for (v, pv) in r.iter_mut().zip(&pivot_row) {
                    *v -= f * pv;
                }
                r[col] = 0.0; // kill residual rounding
            }
        }
    }
}

/// A reusable snapshot of a solved simplex state: which columns were
/// basic and where every nonbasic column rested. Together with the
/// (layout-stable) [`LpProblem`] it was taken from, this is enough to
/// refactor `B⁻¹A` from scratch and resume optimization after a bound
/// change — the warm-start handoff between branch-and-bound nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisSnapshot {
    /// Basis columns (tableau column indices, artificials included).
    basis: Vec<usize>,
    /// Per-column rest status, `ncols` entries.
    status: Vec<ColStatus>,
}

/// Solves a standard-form LP (minimize). Returns column values for the
/// problem's columns (structural + slack), artificials excluded.
pub fn solve(problem: &LpProblem) -> LpSolution {
    let mut iters = 0;
    solve_two_phase(problem, &problem.lower, &problem.upper, &mut iters, false).0
}

/// Cold two-phase solve under explicit column bounds (`col_lower` /
/// `col_upper` cover structural + slack columns; artificials are
/// appended internally). The pivot sequence is exactly the seed
/// algorithm's — `iters` counting and basis capture are observational.
fn solve_two_phase(
    problem: &LpProblem,
    col_lower: &[f64],
    col_upper: &[f64],
    iters: &mut u64,
    want_basis: bool,
) -> (LpSolution, Option<BasisSnapshot>) {
    let m = problem.row_count();
    let n = problem.col_count();
    let ncols = n + m; // + artificials
    let max_iters = 200 * (m as u64 + ncols as u64) + 20_000;

    // Nonbasic start: every column at the bound of smaller magnitude
    // (lower, unless upper is finite and |upper| < |lower|).
    let mut status = vec![ColStatus::AtLower; ncols];
    for j in 0..n {
        if col_upper[j].is_finite() && col_upper[j].abs() < col_lower[j].abs() {
            status[j] = ColStatus::AtUpper;
        }
    }
    let start_value = |j: usize| -> f64 {
        match status[j] {
            ColStatus::AtLower => col_lower[j],
            ColStatus::AtUpper => col_upper[j],
            ColStatus::Basic => 0.0,
        }
    };

    // Dense rows and residuals r = b − A·x_start.
    let mut dense = vec![vec![0.0_f64; ncols]; m];
    let mut resid = problem.rhs.clone();
    for (i, row) in problem.rows.iter().enumerate() {
        for &(j, a) in row {
            dense[i][j] = a;
            resid[i] -= a * start_value(j);
        }
    }
    // Rows with a negative residual are negated (multiplying an equality
    // by −1 is harmless) so every artificial can enter with coefficient
    // +1 and the initial basis is exactly the identity.
    let mut lower = col_lower.to_vec();
    let mut upper = col_upper.to_vec();
    let mut basis = Vec::with_capacity(m);
    let mut xb = Vec::with_capacity(m);
    for i in 0..m {
        if resid[i] < 0.0 {
            for v in &mut dense[i] {
                *v = -*v;
            }
            resid[i] = -resid[i];
        }
        let col = n + i;
        dense[i][col] = 1.0;
        lower.push(0.0);
        upper.push(f64::INFINITY);
        status[col] = ColStatus::Basic;
        basis.push(col);
        xb.push(resid[i]);
    }

    let mut tableau = Tableau {
        tab: dense,
        xb,
        basis,
        status,
        lower,
        upper,
        m,
        ncols,
    };

    // Phase 1: minimize the sum of artificials.
    let mut phase1_costs = vec![0.0; ncols];
    for c in phase1_costs.iter_mut().skip(n) {
        *c = 1.0;
    }
    match tableau.optimize(&phase1_costs, max_iters, iters) {
        Ok(w) => {
            if w > FEAS_EPS * (1.0 + problem.rhs.iter().map(|r| r.abs()).sum::<f64>()) {
                return (
                    LpSolution {
                        status: LpStatus::Infeasible,
                        objective: 0.0,
                        values: Vec::new(),
                    },
                    None,
                );
            }
        }
        Err(LpStatus::Unbounded) => unreachable!("phase 1 objective is bounded below"),
        Err(s) => {
            return (
                LpSolution {
                    status: s,
                    objective: 0.0,
                    values: Vec::new(),
                },
                None,
            )
        }
    }
    // Fix artificials at zero for phase 2 (basic-at-zero artificials may
    // remain; being fixed, they can never carry value again).
    for j in n..ncols {
        tableau.lower[j] = 0.0;
        tableau.upper[j] = 0.0;
        if tableau.status[j] != ColStatus::Basic {
            tableau.status[j] = ColStatus::AtLower;
        }
    }

    // Phase 2: the real objective.
    let mut phase2_costs = vec![0.0; ncols];
    phase2_costs[..n].copy_from_slice(&problem.costs);
    match tableau.optimize(&phase2_costs, max_iters, iters) {
        Ok(obj) => {
            let mut values = tableau.values();
            values.truncate(n);
            let snapshot = want_basis.then(|| BasisSnapshot {
                basis: tableau.basis.clone(),
                status: tableau.status.clone(),
            });
            (
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: obj + problem.objective_offset,
                    values,
                },
                snapshot,
            )
        }
        Err(s) => (
            LpSolution {
                status: s,
                objective: 0.0,
                values: Vec::new(),
            },
            None,
        ),
    }
}

/// Rebuilds a [`Tableau`] from a basis snapshot under new column bounds:
/// refactors `B⁻¹A` by Gauss–Jordan, assigning each snapshot basis column
/// the remaining row with the largest pivot. Returns `None` when the
/// snapshot does not fit this problem or the basis is numerically
/// singular — callers fall back to a cold solve.
///
/// Row scaling from the cold path's sign flips is immaterial: `B⁻¹A`
/// is invariant under row scaling of `[A | b]`, so artificial columns
/// are laid down as `+eᵢ` unconditionally here.
fn warm_tableau(
    problem: &LpProblem,
    col_lower: &[f64],
    col_upper: &[f64],
    snap: &BasisSnapshot,
) -> Option<Tableau> {
    let m = problem.row_count();
    let n = problem.col_count();
    let ncols = n + m;
    if snap.basis.len() != m || snap.status.len() != ncols {
        return None;
    }

    let mut dense = vec![vec![0.0_f64; ncols]; m];
    for (i, row) in problem.rows.iter().enumerate() {
        for &(j, a) in row {
            dense[i][j] = a;
        }
        dense[i][n + i] = 1.0;
    }
    let mut rhs = problem.rhs.clone();

    // Factor the basis: give each basis column a pivot row (largest
    // remaining magnitude), eliminating it from all other rows and the
    // transformed RHS.
    let mut assigned = vec![false; m];
    let mut row_of = vec![usize::MAX; m];
    for (k, &c) in snap.basis.iter().enumerate() {
        if c >= ncols {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (r, &used) in assigned.iter().enumerate() {
            if used {
                continue;
            }
            let a = dense[r][c].abs();
            if best.map_or(true, |(_, ba)| a > ba) {
                best = Some((r, a));
            }
        }
        let (r, mag) = best?;
        if mag <= 1e-8 {
            return None; // singular basis: cold fallback
        }
        let inv = 1.0 / dense[r][c];
        for v in &mut dense[r] {
            *v *= inv;
        }
        rhs[r] *= inv;
        let prow = dense[r].clone();
        let prhs = rhs[r];
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = dense[i][c];
            if f != 0.0 {
                for (v, pv) in dense[i].iter_mut().zip(&prow) {
                    *v -= f * pv;
                }
                dense[i][c] = 0.0;
                rhs[i] -= f * prhs;
            }
        }
        assigned[r] = true;
        row_of[k] = r;
    }

    // Column bounds in tableau layout; artificials stay pinned at zero
    // (they were fixed after phase 1 of the solve the snapshot came from).
    let mut lower = col_lower.to_vec();
    let mut upper = col_upper.to_vec();
    lower.resize(ncols, 0.0);
    upper.resize(ncols, 0.0);

    // Statuses: basis membership wins; other columns keep their snapshot
    // rest bound, re-read against the *new* bounds — that re-read is the
    // entire warm start. Inconsistent snapshot rows degrade gracefully.
    let mut in_basis = vec![false; ncols];
    let mut basis = vec![0usize; m];
    for (k, &c) in snap.basis.iter().enumerate() {
        in_basis[c] = true;
        basis[row_of[k]] = c;
    }
    let mut status = Vec::with_capacity(ncols);
    for j in 0..ncols {
        let s = if in_basis[j] {
            ColStatus::Basic
        } else {
            match snap.status[j] {
                ColStatus::AtUpper if upper[j].is_finite() => ColStatus::AtUpper,
                _ => ColStatus::AtLower,
            }
        };
        status.push(s);
    }

    // Basic values: xb = B⁻¹b − Σ (B⁻¹A)ⱼ·xⱼ over nonbasic columns.
    let mut xb = rhs;
    for j in 0..ncols {
        let v = match status[j] {
            ColStatus::Basic => continue,
            ColStatus::AtLower => lower[j],
            ColStatus::AtUpper => upper[j],
        };
        if v != 0.0 {
            for i in 0..m {
                let a = dense[i][j];
                if a != 0.0 {
                    xb[i] -= a * v;
                }
            }
        }
    }

    Some(Tableau {
        tab: dense,
        xb,
        basis,
        status,
        lower,
        upper,
        m,
        ncols,
    })
}

/// Warm solve: rebuilds the parent basis under new bounds, restores
/// primal feasibility with the dual simplex, then polishes with the
/// primal simplex. `None` means "fall back to a cold solve" (singular
/// rebuild or iteration trouble); `Some` carries a definitive answer —
/// including a sound `Infeasible` from the dual ratio test.
fn solve_warm(
    problem: &LpProblem,
    col_lower: &[f64],
    col_upper: &[f64],
    snap: &BasisSnapshot,
    iters: &mut u64,
) -> Option<(LpSolution, Option<BasisSnapshot>)> {
    let mut tableau = warm_tableau(problem, col_lower, col_upper, snap)?;
    let m = problem.row_count();
    let n = problem.col_count();
    let ncols = n + m;

    let mut phase2_costs = vec![0.0; ncols];
    phase2_costs[..n].copy_from_slice(&problem.costs);

    // Dual repair should take a handful of pivots; a long fight means the
    // parent basis was a bad start, and a cold solve is the better spend.
    let dual_cap = 100 * m as u64 + 1_000;
    match tableau.dual_restore(&phase2_costs, dual_cap, iters) {
        Ok(()) => {}
        Err(LpStatus::Infeasible) => {
            return Some((
                LpSolution {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    values: Vec::new(),
                },
                None,
            ))
        }
        Err(_) => return None,
    }

    let max_iters = 200 * (m as u64 + ncols as u64) + 20_000;
    match tableau.optimize(&phase2_costs, max_iters, iters) {
        Ok(obj) => {
            let mut values = tableau.values();
            values.truncate(n);
            let next = BasisSnapshot {
                basis: tableau.basis.clone(),
                status: tableau.status.clone(),
            };
            Some((
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: obj + problem.objective_offset,
                    values,
                },
                Some(next),
            ))
        }
        Err(_) => None,
    }
}

/// Convenience: solve the LP relaxation of a model under bound overrides,
/// returning structural-variable values and the objective in the model's
/// own sense.
///
/// # Errors
///
/// Maps non-optimal statuses onto [`MilpError`].
pub fn solve_relaxation(model: &Model, bounds: &[(f64, f64)]) -> Result<(f64, Vec<f64>), MilpError> {
    solve_relaxation_counted(model, bounds).map(|(obj, vals, _)| (obj, vals))
}

/// [`solve_relaxation`] plus the simplex pivot count of the solve —
/// same algorithm, same pivot sequence, observational counter only.
///
/// # Errors
///
/// Maps non-optimal statuses onto [`MilpError`].
pub fn solve_relaxation_counted(
    model: &Model,
    bounds: &[(f64, f64)],
) -> Result<(f64, Vec<f64>, u64), MilpError> {
    let problem = LpProblem::from_model(model, bounds);
    let mut iters = 0;
    let (sol, _) = solve_two_phase(&problem, &problem.lower, &problem.upper, &mut iters, false);
    match sol.status {
        LpStatus::Optimal => {
            let sign = match model.sense() {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            };
            // Reassemble model-space values from live columns and
            // eliminated constants.
            let mut values: Vec<f64> = problem
                .var_map
                .iter()
                .map(|r| match *r {
                    ColRef::Col(i) => sol.values[i],
                    ColRef::Fixed(v) => v,
                })
                .collect();
            // Snap integers that are within tolerance of a bound.
            for (v, x) in model.vars.iter().zip(values.iter_mut()) {
                if v.kind == VarKind::Integer {
                    let r = x.round();
                    if (*x - r).abs() < 1e-7 {
                        *x = r;
                    }
                }
            }
            Ok((sign * sol.objective, values, iters))
        }
        LpStatus::Infeasible => Err(MilpError::Infeasible),
        LpStatus::Unbounded => Err(MilpError::Unbounded),
        LpStatus::IterationLimit => Err(MilpError::IterationLimit),
    }
}

/// Outcome of one relaxation solve under a [`WarmContext`].
#[derive(Debug, Clone)]
pub struct RelaxSolve {
    /// Objective in the model's own sense.
    pub objective: f64,
    /// Model-space variable values (integers snapped when within 1e-7).
    pub values: Vec<f64>,
    /// Basis to warm-start child nodes from.
    pub basis: BasisSnapshot,
    /// Simplex pivots spent on this solve (dual + primal).
    pub iterations: u64,
    /// Whether the warm path produced the answer (`false`: cold solve,
    /// either by request or after a warm-path fallback).
    pub warmed: bool,
}

/// A model's relaxation with a *bound-independent* column layout, built
/// once per branch-and-bound run. Unlike [`LpProblem::from_model`], no
/// variable is ever eliminated, so the same [`BasisSnapshot`] indexes
/// stay valid across nodes — only `lower`/`upper` change. This is the
/// warm-start engine room: a child node re-solves from its parent's
/// basis via the dual simplex instead of two cold phases.
#[derive(Debug, Clone)]
pub struct WarmContext {
    problem: LpProblem,
    /// +1 for minimize models, −1 for maximize (internal form minimizes).
    sign: f64,
    /// Model variable count (== structural column count).
    nvars: usize,
    /// Model variables of integer kind (for value snapping).
    int_vars: Vec<usize>,
}

impl WarmContext {
    /// Builds the dense relaxation context from the model's own bounds.
    pub fn new(model: &Model) -> WarmContext {
        let root: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let problem = LpProblem::from_model_dense(model, &root);
        let sign = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let int_vars = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect();
        WarmContext {
            problem,
            sign,
            nvars: model.var_count(),
            int_vars,
        }
    }

    /// Solves the relaxation under `bounds`, warm-starting from `basis`
    /// when given (falling back to a cold solve on numerical failure —
    /// correctness never depends on the warm path).
    ///
    /// # Errors
    ///
    /// Maps non-optimal LP statuses onto [`MilpError`].
    ///
    /// # Panics
    ///
    /// Panics if `bounds.len()` differs from the model's variable count.
    pub fn solve_relaxation(
        &self,
        bounds: &[(f64, f64)],
        basis: Option<&BasisSnapshot>,
    ) -> Result<RelaxSolve, MilpError> {
        assert_eq!(bounds.len(), self.nvars, "bounds length mismatch");
        // Structural columns map 1:1 onto model variables (dense layout);
        // intersect node bounds with model bounds defensively, then keep
        // slack bounds as built.
        let mut col_lower = self.problem.lower.clone();
        let mut col_upper = self.problem.upper.clone();
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            col_lower[i] = lo.max(self.problem.lower[i]);
            col_upper[i] = hi.min(self.problem.upper[i]);
        }

        let mut iters = 0;
        let mut warmed = false;
        let outcome = basis
            .and_then(|snap| {
                let out = solve_warm(&self.problem, &col_lower, &col_upper, snap, &mut iters);
                warmed = out.is_some();
                out
            })
            .unwrap_or_else(|| {
                let (sol, snap) =
                    solve_two_phase(&self.problem, &col_lower, &col_upper, &mut iters, true);
                (sol, snap)
            });
        let (sol, snapshot) = outcome;

        match sol.status {
            LpStatus::Optimal => {
                let mut values = sol.values;
                values.truncate(self.nvars);
                for &j in &self.int_vars {
                    let r = values[j].round();
                    if (values[j] - r).abs() < 1e-7 {
                        values[j] = r;
                    }
                }
                Ok(RelaxSolve {
                    objective: self.sign * sol.objective,
                    values,
                    basis: snapshot.expect("optimal solve returns a basis"),
                    iterations: iters,
                    warmed,
                })
            }
            LpStatus::Infeasible => Err(MilpError::Infeasible),
            LpStatus::Unbounded => Err(MilpError::Unbounded),
            LpStatus::IterationLimit => Err(MilpError::IterationLimit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation, Sense};

    fn model_bounds(m: &Model) -> Vec<(f64, f64)> {
        m.vars.iter().map(|v| (v.lower, v.upper)).collect()
    }

    #[test]
    fn basic_two_var_lp() {
        // maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 10.
        // Optimum at (4, 0): objective 12.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0, 3.0).unwrap();
        let y = m.add_continuous("y", 0.0, 10.0, 2.0).unwrap();
        m.add_constraint("c1", vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0)
            .unwrap();
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0)
            .unwrap();
        let (obj, vals) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - 12.0).abs() < 1e-6, "objective {obj}");
        assert!((vals[0] - 4.0).abs() < 1e-6);
        assert!(vals[1].abs() < 1e-6);
    }

    #[test]
    fn interior_optimum_lp() {
        // maximize x + y s.t. 2x + y <= 10, x + 3y <= 15 -> (3, 4), obj 7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 100.0, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, 100.0, 1.0).unwrap();
        m.add_constraint("c1", vec![(x, 2.0), (y, 1.0)], Relation::Le, 10.0)
            .unwrap();
        m.add_constraint("c2", vec![(x, 1.0), (y, 3.0)], Relation::Le, 15.0)
            .unwrap();
        let (obj, vals) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - 7.0).abs() < 1e-6);
        assert!((vals[0] - 3.0).abs() < 1e-6);
        assert!((vals[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn minimize_with_ge_constraints() {
        // minimize 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> (7, 3): 23.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 2.0, 100.0, 2.0).unwrap();
        let y = m.add_continuous("y", 3.0, 100.0, 3.0).unwrap();
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        let (obj, vals) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - 23.0).abs() < 1e-6, "objective {obj}");
        assert!((vals[0] - 7.0).abs() < 1e-6);
        assert!((vals[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y s.t. x + 2y = 8, x - y = 2 -> (4, 2): 6.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", -100.0, 100.0, 1.0).unwrap();
        let y = m.add_continuous("y", -100.0, 100.0, 1.0).unwrap();
        m.add_constraint("c1", vec![(x, 1.0), (y, 2.0)], Relation::Eq, 8.0)
            .unwrap();
        m.add_constraint("c2", vec![(x, 1.0), (y, -1.0)], Relation::Eq, 2.0)
            .unwrap();
        let (obj, vals) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - 6.0).abs() < 1e-6);
        assert!((vals[0] - 4.0).abs() < 1e-6);
        assert!((vals[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0, 1.0).unwrap();
        m.add_constraint("c", vec![(x, 1.0)], Relation::Ge, 5.0)
            .unwrap();
        assert_eq!(
            solve_relaxation(&m, &model_bounds(&m)),
            Err(MilpError::Infeasible)
        );
    }

    #[test]
    fn variable_bounds_bind_without_constraints() {
        let mut m = Model::new(Sense::Maximize);
        let _ = m.add_continuous("x", -1.5, 2.5, 1.0).unwrap();
        let (obj, vals) = solve_relaxation(&m, &[(-1.5, 2.5)]).unwrap();
        assert!((obj - 2.5).abs() < 1e-9);
        assert!((vals[0] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // minimize x with x in [-5, 5], x + y >= -3, y in [0, 1].
        // x can go to -3 - y; with y = 1, x = -4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", -5.0, 5.0, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, 1.0, 0.0).unwrap();
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Ge, -3.0)
            .unwrap();
        let (obj, _) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - (-4.0)).abs() < 1e-6, "objective {obj}");
    }

    #[test]
    fn bound_overrides_tighten() {
        let mut m = Model::new(Sense::Maximize);
        let _ = m.add_continuous("x", 0.0, 10.0, 1.0).unwrap();
        let (obj, _) = solve_relaxation(&m, &[(0.0, 4.0)]).unwrap();
        assert!((obj - 4.0).abs() < 1e-9);
        // Fixing via overrides.
        let (obj, vals) = solve_relaxation(&m, &[(2.0, 2.0)]).unwrap();
        assert!((obj - 2.0).abs() < 1e-9);
        assert!((vals[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 10.0, 1.0).unwrap();
        let y = m.add_continuous("y", 0.0, 10.0, 1.0).unwrap();
        for k in 1..=10 {
            m.add_constraint(
                format!("c{k}"),
                vec![(x, k as f64), (y, k as f64)],
                Relation::Le,
                4.0 * k as f64,
            )
            .unwrap();
        }
        let (obj, _) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        assert!((obj - 4.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_relaxation_of_knapsack() {
        // Binary knapsack relaxation: values 6, 10, 12; weights 1, 2, 3;
        // cap 4 -> LP takes items 2 and 3rd fractionally.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 6.0);
        let b = m.add_binary("b", 10.0);
        let c = m.add_binary("c", 12.0);
        m.add_constraint("cap", vec![(a, 1.0), (b, 2.0), (c, 3.0)], Relation::Le, 4.0)
            .unwrap();
        let (obj, vals) = solve_relaxation(&m, &model_bounds(&m)).unwrap();
        // LP optimum: a=1, b=1, c=1/3 -> 6 + 10 + 4 = 20.
        assert!((obj - 20.0).abs() < 1e-6, "objective {obj}");
        assert!((vals[2] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_model_solves() {
        let m = Model::new(Sense::Maximize);
        let (obj, vals) = solve_relaxation(&m, &[]).unwrap();
        assert_eq!(obj, 0.0);
        assert!(vals.is_empty());
    }

    /// A small knapsack-shaped maximize model for warm-start tests.
    fn warm_test_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 6.0);
        let b = m.add_binary("b", 10.0);
        let c = m.add_binary("c", 12.0);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0).unwrap();
        m.add_constraint(
            "cap",
            vec![(a, 1.0), (b, 2.0), (c, 3.0), (x, 1.0)],
            Relation::Le,
            4.0,
        )
        .unwrap();
        m.add_constraint("mix", vec![(a, 1.0), (x, 1.0)], Relation::Le, 2.5)
            .unwrap();
        m
    }

    #[test]
    fn warm_solve_matches_cold_after_tightening() {
        let m = warm_test_model();
        let ctx = WarmContext::new(&m);
        let root = model_bounds(&m);
        let parent = ctx.solve_relaxation(&root, None).unwrap();
        assert!(!parent.warmed);

        // Branch on every binary in both directions; warm objective must
        // equal the cold objective at each child.
        for j in 0..3 {
            for fixed in [0.0, 1.0] {
                let mut child = root.clone();
                child[j] = (fixed, fixed);
                let warm = ctx.solve_relaxation(&child, Some(&parent.basis)).unwrap();
                let (cold_obj, _) = solve_relaxation(&m, &child).unwrap();
                assert!(
                    (warm.objective - cold_obj).abs() < 1e-6,
                    "var {j} fixed {fixed}: warm {} vs cold {cold_obj}",
                    warm.objective
                );
            }
        }
    }

    #[test]
    fn warm_solve_detects_infeasible_child() {
        // x + y = 1 with both fixed to 0 is infeasible.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.0)
            .unwrap();
        let ctx = WarmContext::new(&m);
        let root = model_bounds(&m);
        let parent = ctx.solve_relaxation(&root, None).unwrap();
        let child = vec![(0.0, 0.0), (0.0, 0.0)];
        assert_eq!(
            ctx.solve_relaxation(&child, Some(&parent.basis)).map(|_| ()),
            Err(MilpError::Infeasible)
        );
    }

    #[test]
    fn warm_chain_stays_consistent() {
        // Fix binaries one at a time, warm-starting each child from its
        // parent — the realistic branch-and-bound dive pattern.
        let m = warm_test_model();
        let ctx = WarmContext::new(&m);
        let mut bounds = model_bounds(&m);
        let mut relax = ctx.solve_relaxation(&bounds, None).unwrap();
        for (j, fixed) in [(2usize, 1.0), (1usize, 0.0), (0usize, 1.0)] {
            bounds[j] = (fixed, fixed);
            relax = match ctx.solve_relaxation(&bounds, Some(&relax.basis)) {
                Ok(r) => r,
                Err(e) => panic!("chain step ({j}, {fixed}) failed: {e}"),
            };
            let (cold_obj, _) = solve_relaxation(&m, &bounds).unwrap();
            assert!(
                (relax.objective - cold_obj).abs() < 1e-6,
                "step ({j}, {fixed}): warm {} vs cold {cold_obj}",
                relax.objective
            );
        }
    }

    #[test]
    fn warm_solve_cheaper_than_cold_on_bigger_lp() {
        // A 40-binary knapsack with side constraints: warm re-solve after
        // one branching change should need far fewer pivots than cold.
        let n = 40usize;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), ((i * 31 + 7) % 23 + 1) as f64))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 17 + 3) % 9 + 1) as f64)),
            Relation::Le,
            55.0,
        )
        .unwrap();
        for k in 0..4 {
            m.add_constraint(
                format!("side{k}"),
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| (i + k) % 3 == 0)
                    .map(|(_, &v)| (v, 1.0)),
                Relation::Le,
                7.0,
            )
            .unwrap();
        }
        let ctx = WarmContext::new(&m);
        let root: Vec<(f64, f64)> = m.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let parent = ctx.solve_relaxation(&root, None).unwrap();

        let mut child = root.clone();
        child[n / 2] = (1.0, 1.0);
        let warm = ctx.solve_relaxation(&child, Some(&parent.basis)).unwrap();
        let cold = ctx.solve_relaxation(&child, None).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(warm.warmed);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} pivots vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }
}
