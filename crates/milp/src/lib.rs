//! Mixed-integer linear programming, from scratch.
//!
//! The paper solves the Flex-Offline placement ILP (Section IV-B) with
//! Gurobi. This crate is the reproduction's stand-in: a self-contained
//! MILP solver sized for that problem class (a few hundred binaries, a few
//! hundred rows) —
//!
//! - [`Model`] — a mutable model builder: variables (continuous or
//!   integer/binary, with bounds), linear constraints, and a linear
//!   objective;
//! - [`simplex`] — a dense two-phase primal simplex over the LP
//!   relaxation;
//! - branch-and-bound ([`Model::solve`]) — parallel best-first search on
//!   the LP bound with most-fractional branching, warm-started node
//!   relaxations (dual simplex from the parent basis, see
//!   [`simplex::WarmContext`]), a rounding incumbent heuristic, a
//!   relative-gap stop, and a wall-clock time limit (mirroring the
//!   paper's 5-minute Gurobi cap). [`SolveConfig::threads`] selects the
//!   worker count; `threads: 1` is deterministic, and `threads: 1` with
//!   `warm_lp: false` reproduces the original sequential solver exactly.
//!   See `crates/milp/README.md` for the engine architecture.
//!
//! # Example: a tiny knapsack
//!
//! ```
//! use flex_milp::{Model, Sense, Relation, SolveConfig};
//!
//! let mut m = Model::new(Sense::Maximize);
//! let items = [(60.0, 10.0), (100.0, 20.0), (120.0, 30.0)];
//! let vars: Vec<_> = items
//!     .iter()
//!     .enumerate()
//!     .map(|(i, (value, _))| m.add_binary(format!("item{i}"), *value))
//!     .collect();
//! let weights: Vec<_> = vars.iter().zip(&items).map(|(&v, (_, w))| (v, *w)).collect();
//! m.add_constraint("capacity", weights, Relation::Le, 50.0)?;
//! let sol = m.solve(&SolveConfig::default())?;
//! assert_eq!(sol.objective.round(), 220.0); // items 1 and 2
//! # Ok::<(), flex_milp::MilpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod model;
pub mod simplex;
mod solver;

pub use error::MilpError;
pub use model::{ConstraintId, Model, Relation, Sense, VarId, VarKind};
pub use simplex::{BasisSnapshot, RelaxSolve, WarmContext};
pub use solver::{MilpSolution, SolveConfig, SolveStatus};
