//! Branch-and-bound over the LP relaxation.
//!
//! Two engines share the search logic contract:
//!
//! - **Sequential legacy engine** (`threads == 1` with `warm_lp` off):
//!   the original single-threaded best-first loop over cold two-phase
//!   LP solves. Kept byte-for-byte in behaviour as the determinism
//!   baseline — same node order, same pivots, same answers.
//! - **Parallel warm engine** (everything else): a worker pool over a
//!   shared best-first queue. Each node carries its parent's optimal
//!   basis ([`BasisSnapshot`]); child relaxations re-solve via the dual
//!   simplex from that basis instead of restarting phase 1, falling
//!   back to a cold solve on numerical trouble. Workers prune against
//!   a shared incumbent and stop on a global gap/budget/exhaustion
//!   condition. With `threads == 1` the engine is fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flex_obs::{Counter, Histogram, Obs};
use parking_lot::{Condvar, Mutex};

use crate::model::{Model, Sense, VarKind};
use crate::simplex::{solve_relaxation_counted, BasisSnapshot, WarmContext};
use crate::MilpError;

/// Integrality tolerance: LP values this close to an integer count as
/// integral.
const INT_EPS: f64 = 1e-6;

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveConfig {
    /// Wall-clock budget. The paper caps Gurobi at 5 minutes for the
    /// Oracle policy; harnesses here default much lower.
    pub time_limit: Duration,
    /// Stop when `(best_bound − incumbent) / max(|incumbent|, 1)` falls
    /// below this relative gap.
    pub relative_gap: f64,
    /// Hard cap on explored branch-and-bound nodes (global across
    /// workers; may overshoot by at most the worker count).
    pub max_nodes: u64,
    /// Worker threads for the branch-and-bound search. `0` means use
    /// [`std::thread::available_parallelism`]. `1` is deterministic:
    /// nodes are processed in exactly the best-first heap order.
    pub threads: usize,
    /// Warm-start node relaxations from the parent's simplex basis.
    /// Setting `threads: 1` *and* `warm_lp: false` reproduces the
    /// original sequential solver exactly, pivot for pivot.
    pub warm_lp: bool,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            time_limit: Duration::from_secs(30),
            relative_gap: 1e-6,
            max_nodes: 200_000,
            threads: 0,
            warm_lp: true,
        }
    }
}

impl SolveConfig {
    /// A configuration with the given time limit and defaults elsewhere.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        SolveConfig {
            time_limit,
            ..SolveConfig::default()
        }
    }

    /// The worker count this configuration resolves to on this machine.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// How the solve terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal within the gap tolerance.
    Optimal,
    /// Feasible incumbent returned, but optimality was not proven —
    /// the time/node budget expired, or nodes were dropped after LP
    /// failures (see [`MilpSolution::relaxation_failures`]).
    Feasible,
}

/// A feasible MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective of `values` in the model's own sense.
    pub objective: f64,
    /// One value per model variable; integers are exactly integral.
    pub values: Vec<f64>,
    /// The best LP bound at termination (equals `objective` when optimal).
    pub best_bound: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// Simplex pivots spent on node relaxations that reached an optimum
    /// (warm + cold; heuristic dives included, failed/infeasible LPs
    /// excluded).
    pub lp_iterations: u64,
    /// Node relaxations answered from the parent basis via the dual
    /// simplex.
    pub warm_starts: u64,
    /// Node relaxations solved cold (two-phase from scratch), including
    /// warm-path fallbacks.
    pub cold_starts: u64,
    /// Nodes dropped because their relaxation failed for a reason other
    /// than infeasibility (iteration limit, unboundedness). Non-zero
    /// means parts of the tree went unexplored: the status is capped at
    /// [`SolveStatus::Feasible`] rather than claiming optimality.
    pub relaxation_failures: u64,
}

impl MilpSolution {
    /// Value of a variable in this solution.
    ///
    /// # Panics
    ///
    /// Panics on a foreign variable id.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.0]
    }

    /// True if the binary/integer variable rounds to 1.
    ///
    /// # Panics
    ///
    /// Panics on a foreign variable id.
    pub fn is_one(&self, var: crate::VarId) -> bool {
        // flex-lint: allow(F1): round() yields an exact integer-valued float, so == is exact
        self.values[var.0].round() == 1.0
    }
}

impl fmt::Display for MilpSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let status = match self.status {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible",
        };
        write!(
            f,
            "{status} objective={:.6} bound={:.6} nodes={} lp_iters={} warm={} cold={}",
            self.objective,
            self.best_bound,
            self.nodes_explored,
            self.lp_iterations,
            self.warm_starts,
            self.cold_starts,
        )?;
        if self.relaxation_failures > 0 {
            write!(f, " relaxation_failures={}", self.relaxation_failures)?;
        }
        Ok(())
    }
}

/// A branch-and-bound node: bound overrides relative to the model.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// LP bound inherited from the parent (in internal maximize terms).
    bound: f64,
    depth: u32,
    /// Parent's optimal basis for warm-starting this node's relaxation
    /// (shared between siblings). `None` in the legacy engine.
    basis: Option<Arc<BasisSnapshot>>,
}

/// Heap ordering: best bound first, deeper first on ties (dives toward
/// integer solutions).
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .bound
            .total_cmp(&other.0.bound)
            .then(self.0.depth.cmp(&other.0.depth))
    }
}

/// Observational LP-work counters threaded through the sequential path.
#[derive(Default)]
struct LpCounters {
    lp_iterations: u64,
    cold_starts: u64,
}

/// `flex-obs` hooks for the solver: per-relaxation pivot accounting and
/// warm/cold/failure counters. All noop unless minted from a recording
/// handle via [`Model::solve_observed`]; the handles are lock-free
/// atomics, so workers update them without extra synchronization.
struct MilpHooks {
    nodes: Counter,
    warm_starts: Counter,
    cold_starts: Counter,
    relaxation_failures: Counter,
    pivots_per_node: Histogram,
}

impl MilpHooks {
    fn noop() -> Self {
        MilpHooks {
            nodes: Counter::noop(),
            warm_starts: Counter::noop(),
            cold_starts: Counter::noop(),
            relaxation_failures: Counter::noop(),
            pivots_per_node: Histogram::noop(),
        }
    }

    fn new(obs: &Obs) -> Self {
        MilpHooks {
            nodes: obs.counter("milp/nodes"),
            warm_starts: obs.counter("milp/warm_starts"),
            cold_starts: obs.counter("milp/cold_starts"),
            relaxation_failures: obs.counter("milp/relaxation_failures"),
            pivots_per_node: obs.histogram("milp/pivots_per_node"),
        }
    }

    /// One LP relaxation solved: `iters` simplex pivots, warm or cold.
    fn lp(&self, iters: u64, warmed: bool) {
        self.pivots_per_node.observe(iters);
        if warmed {
            self.warm_starts.inc();
        } else {
            self.cold_starts.inc();
        }
    }
}

impl Model {
    /// Solves the model by branch-and-bound.
    ///
    /// Returns the best integer-feasible solution found. With an empty
    /// integer set this is a single LP solve.
    ///
    /// # Errors
    ///
    /// - [`MilpError::Infeasible`] if no integer-feasible point exists
    ///   (proven before the budget expires);
    /// - [`MilpError::Unbounded`] if the root relaxation is unbounded;
    /// - [`MilpError::TimeLimitNoSolution`] if the budget expired before
    ///   any feasible solution was found;
    /// - [`MilpError::IterationLimit`] on simplex breakdown.
    pub fn solve(&self, config: &SolveConfig) -> Result<MilpSolution, MilpError> {
        self.solve_with_warm_start(config, None)
    }

    /// Like [`Model::solve`], but seeds branch-and-bound with a known
    /// feasible assignment (e.g. from a greedy heuristic). The warm start
    /// is validated; an infeasible one is silently ignored. Guarantees
    /// that a time-limited solve returns at least the warm-start quality.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with_warm_start(
        &self,
        config: &SolveConfig,
        warm_start: Option<&[f64]>,
    ) -> Result<MilpSolution, MilpError> {
        self.solve_inner(config, warm_start, &MilpHooks::noop())
    }

    /// Like [`Model::solve`], but streams per-node LP accounting
    /// (nodes, warm/cold relaxations, pivots per relaxation, numerical
    /// failures) into `obs` under the `milp/` metric namespace. The
    /// search itself is unaffected: hooks never branch on recorded
    /// state, so an observed solve explores the identical tree.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_observed(
        &self,
        config: &SolveConfig,
        obs: &Obs,
    ) -> Result<MilpSolution, MilpError> {
        self.solve_inner(config, None, &MilpHooks::new(obs))
    }

    fn solve_inner(
        &self,
        config: &SolveConfig,
        warm_start: Option<&[f64]>,
        hooks: &MilpHooks,
    ) -> Result<MilpSolution, MilpError> {
        let threads = config.resolved_threads().max(1);
        if threads == 1 && !config.warm_lp {
            self.solve_sequential(config, warm_start, hooks)
        } else {
            self.solve_parallel(config, warm_start, threads, hooks)
        }
    }

    /// The original sequential engine: best-first over cold LP solves.
    /// This is the determinism baseline — node order and pivot sequence
    /// match the pre-parallel solver exactly.
    fn solve_sequential(
        &self,
        config: &SolveConfig,
        warm_start: Option<&[f64]>,
        hooks: &MilpHooks,
    ) -> Result<MilpSolution, MilpError> {
        let start = Instant::now();
        // Internal sense: maximize (flip objective for minimize models).
        let internal = |obj: f64| match self.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        };
        let external = internal; // involution

        let root_bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let int_vars: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect();

        let mut counters = LpCounters::default();
        let (root_obj, root_vals, root_iters) = solve_relaxation_counted(self, &root_bounds)?;
        counters.lp_iterations += root_iters;
        counters.cold_starts += 1;
        hooks.nodes.inc();
        hooks.lp(root_iters, false);
        let mut nodes_explored: u64 = 1;
        let finish = |status: SolveStatus,
                      obj: f64,
                      values: Vec<f64>,
                      best_bound: f64,
                      nodes_explored: u64,
                      counters: &LpCounters| MilpSolution {
            status,
            objective: obj,
            values,
            best_bound,
            nodes_explored,
            lp_iterations: counters.lp_iterations,
            warm_starts: 0,
            cold_starts: counters.cold_starts,
            relaxation_failures: 0,
        };

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // internal objective
        if let Some(ws) = warm_start {
            if ws.len() == self.vars.len() && self.is_feasible(ws, 1e-6) {
                let snapped = rounded(ws, &int_vars);
                if self.is_feasible(&snapped, 1e-6) {
                    incumbent = Some((internal(self.objective_value(&snapped)), snapped));
                }
            }
        }
        let consider = |vals: &[f64],
                            incumbent: &mut Option<(f64, Vec<f64>)>| {
            if !self.is_feasible(vals, 1e-6) {
                return;
            }
            let obj = internal(self.objective_value(vals));
            match incumbent {
                Some((best, _)) if *best >= obj => {}
                _ => *incumbent = Some((obj, vals.to_vec())),
            }
        };

        // Integral root?
        if is_integral(&root_vals, &int_vars) {
            let vals = rounded(&root_vals, &int_vars);
            consider(&vals, &mut incumbent);
            if let Some((obj, values)) = incumbent {
                let e = external(obj);
                return Ok(finish(
                    SolveStatus::Optimal,
                    e,
                    values,
                    e,
                    nodes_explored,
                    &counters,
                ));
            }
        }
        // Heuristics at the root for an early incumbent: cheap rounding,
        // then an LP-guided dive.
        let vals = rounded(&root_vals, &int_vars);
        consider(&vals, &mut incumbent);
        let deadline = start + config.time_limit;
        if let Some(dived) = self.dive(&root_bounds, &int_vars, deadline, &mut counters, hooks) {
            consider(&dived, &mut incumbent);
        }

        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(Node {
            bounds: root_bounds,
            bound: internal(root_obj),
            depth: 0,
            basis: None,
        }));
        let mut best_bound;

        while let Some(HeapNode(node)) = heap.pop() {
            best_bound = node.bound;
            if let Some((inc_obj, _)) = &incumbent {
                let gap = (best_bound - inc_obj) / inc_obj.abs().max(1.0);
                if gap <= config.relative_gap {
                    let (obj, values) = incumbent.expect("checked above");
                    // The proven bound cannot be worse than the incumbent.
                    return Ok(finish(
                        SolveStatus::Optimal,
                        external(obj),
                        values,
                        external(best_bound.max(obj)),
                        nodes_explored,
                        &counters,
                    ));
                }
            }
            if start.elapsed() >= config.time_limit || nodes_explored >= config.max_nodes {
                return match incumbent {
                    Some((obj, values)) => Ok(finish(
                        SolveStatus::Feasible,
                        external(obj),
                        values,
                        external(best_bound),
                        nodes_explored,
                        &counters,
                    )),
                    None => Err(MilpError::TimeLimitNoSolution),
                };
            }

            // Solve this node's relaxation.
            let (obj, vals) = match solve_relaxation_counted(self, &node.bounds) {
                Ok((obj, vals, iters)) => {
                    counters.lp_iterations += iters;
                    counters.cold_starts += 1;
                    hooks.lp(iters, false);
                    (obj, vals)
                }
                Err(MilpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            nodes_explored += 1;
            hooks.nodes.inc();
            let node_bound = internal(obj);
            if let Some((inc_obj, _)) = &incumbent {
                if node_bound <= *inc_obj + config.relative_gap * inc_obj.abs().max(1.0) {
                    continue; // pruned by bound
                }
            }
            // Find the most fractional integer variable.
            let mut branch_var: Option<(usize, f64)> = None;
            for &j in &int_vars {
                let frac = (vals[j] - vals[j].round()).abs();
                if frac > INT_EPS {
                    let score = (vals[j] - vals[j].floor() - 0.5).abs();
                    match branch_var {
                        Some((_, best)) if best <= score => {}
                        _ => branch_var = Some((j, score)),
                    }
                }
            }
            match branch_var {
                None => {
                    // Integer feasible.
                    let snapped = rounded(&vals, &int_vars);
                    consider(&snapped, &mut incumbent);
                }
                Some((j, _)) => {
                    // Periodically dive from promising nodes for new
                    // incumbents (diving is ~|int_vars| LP solves, so
                    // keep it occasional).
                    if nodes_explored % 128 == 0 {
                        if let Some(dived) =
                            self.dive(&node.bounds, &int_vars, deadline, &mut counters, hooks)
                        {
                            consider(&dived, &mut incumbent);
                        }
                    }
                    let snapped = rounded(&vals, &int_vars);
                    consider(&snapped, &mut incumbent);
                    let x = vals[j];
                    let (lo, hi) = node.bounds[j];
                    // Down branch: x <= floor.
                    let down_hi = x.floor();
                    if down_hi >= lo - INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (lo, down_hi.max(lo));
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                            basis: None,
                        }));
                    }
                    // Up branch: x >= ceil.
                    let up_lo = x.ceil();
                    if up_lo <= hi + INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (up_lo.min(hi), hi);
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                            basis: None,
                        }));
                    }
                }
            }
        }

        // Tree exhausted: incumbent (if any) is optimal.
        match incumbent {
            Some((obj, values)) => {
                let e = external(obj);
                Ok(finish(
                    SolveStatus::Optimal,
                    e,
                    values,
                    e,
                    nodes_explored,
                    &counters,
                ))
            }
            None => Err(MilpError::Infeasible),
        }
    }
}

impl Model {
    /// LP-guided diving heuristic: starting from `bounds`, repeatedly fix
    /// the *least* fractional integer variable to its nearest integer and
    /// re-solve the relaxation, backtracking once per variable to the
    /// other side on infeasibility. Returns an integer-feasible
    /// assignment if the dive lands on one. This is the workhorse that
    /// turns fractional packing relaxations into good incumbents.
    fn dive(
        &self,
        bounds: &[(f64, f64)],
        int_vars: &[usize],
        deadline: Instant,
        counters: &mut LpCounters,
        hooks: &MilpHooks,
    ) -> Option<Vec<f64>> {
        let mut b = bounds.to_vec();
        // Each round fixes a *batch* of near-integral variables (plus at
        // least the least-fractional one), so a dive costs a handful of
        // LP solves rather than one per integer variable.
        for _ in 0..(int_vars.len() + 1) {
            if Instant::now() >= deadline {
                return None;
            }
            let (_, vals) = match solve_relaxation_counted(self, &b) {
                Ok((obj, vals, iters)) => {
                    counters.lp_iterations += iters;
                    counters.cold_starts += 1;
                    hooks.lp(iters, false);
                    (obj, vals)
                }
                Err(_) => return None, // infeasible dive: give up
            };
            let mut fractional: Vec<(usize, f64, f64)> = int_vars
                .iter()
                .filter_map(|&j| {
                    let dist = (vals[j] - vals[j].round()).abs();
                    (dist > INT_EPS).then_some((j, vals[j], dist))
                })
                .collect();
            if fractional.is_empty() {
                let snapped = rounded(&vals, int_vars);
                return self.is_feasible(&snapped, 1e-6).then_some(snapped);
            }
            fractional.sort_by(|a, b| a.2.total_cmp(&b.2));
            let mut fixed_any = false;
            for &(j, x, dist) in &fractional {
                if b[j].0 != b[j].1 && (dist <= 0.1 || !fixed_any) {
                    let (lo, hi) = b[j];
                    let v = x.round().clamp(lo, hi);
                    b[j] = (v, v);
                    fixed_any = true;
                }
            }
            if !fixed_any {
                return None; // everything fractional is already fixed
            }
        }
        None
    }
}

/// Why the parallel search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    /// Global bound closed to within the relative gap of the incumbent.
    GapReached,
    /// Time limit or node cap hit.
    Budget,
    /// Queue drained with no work in flight.
    Exhausted,
}

/// Queue state shared by the worker pool, guarded by one mutex.
struct SearchQueue {
    heap: BinaryHeap<HeapNode>,
    /// Per-worker bound of the node currently being processed; `None`
    /// when idle. Together with the heap top this yields the global
    /// best bound (children never exceed their parent's bound).
    in_flight: Vec<Option<f64>>,
    stop: Option<Stop>,
    /// Global bound recorded by whichever worker set `stop`.
    stop_bound: f64,
}

/// Everything the workers share, borrowed for the scope of the solve.
struct Shared<'a> {
    model: &'a Model,
    ctx: WarmContext,
    int_vars: Vec<usize>,
    deadline: Instant,
    relative_gap: f64,
    max_nodes: u64,
    warm_lp: bool,
    queue: Mutex<SearchQueue>,
    work_cv: Condvar,
    /// Best integer-feasible point, internal (maximize) objective.
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    /// Highest bound among nodes dropped after LP failures; NEG_INFINITY
    /// when none. Keeps `best_bound` honest when the tree has holes.
    failed_bound: Mutex<f64>,
    nodes_explored: AtomicU64,
    lp_iterations: AtomicU64,
    warm_starts: AtomicU64,
    cold_starts: AtomicU64,
    relaxation_failures: AtomicU64,
    hooks: &'a MilpHooks,
}

impl Shared<'_> {
    fn internal(&self, obj: f64) -> f64 {
        match self.model.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        }
    }

    /// Offers a candidate to the shared incumbent (validating
    /// feasibility), keeping the better of the two.
    fn consider(&self, vals: &[f64]) {
        if !self.model.is_feasible(vals, 1e-6) {
            return;
        }
        let obj = self.internal(self.model.objective_value(vals));
        let mut inc = self.incumbent.lock();
        match &*inc {
            Some((best, _)) if *best >= obj => {}
            _ => *inc = Some((obj, vals.to_vec())),
        }
    }

    fn incumbent_objective(&self) -> Option<f64> {
        self.incumbent.lock().as_ref().map(|(o, _)| *o)
    }

    /// Marks worker `w` idle; declares exhaustion when nothing is queued
    /// or running. Always wakes waiters (a pushed child or the final
    /// stop both need the nudge).
    fn finish_node(&self, w: usize) {
        let mut q = self.queue.lock();
        q.in_flight[w] = None;
        if q.stop.is_none() && q.heap.is_empty() && q.in_flight.iter().all(Option::is_none) {
            q.stop = Some(Stop::Exhausted);
        }
        self.work_cv.notify_all();
    }

    fn request_stop(&self, w: usize, stop: Stop, bound: f64) {
        let mut q = self.queue.lock();
        if q.stop.is_none() {
            q.stop = Some(stop);
            q.stop_bound = bound;
        }
        q.in_flight[w] = None;
        self.work_cv.notify_all();
    }

    /// One counted LP solve for the dive.
    fn dive_lp(
        &self,
        bounds: &[(f64, f64)],
        basis: Option<&BasisSnapshot>,
    ) -> Option<crate::simplex::RelaxSolve> {
        let basis = if self.warm_lp { basis } else { None };
        let relax = self.ctx.solve_relaxation(bounds, basis).ok()?;
        self.lp_iterations
            .fetch_add(relax.iterations, AtomicOrdering::Relaxed);
        if relax.warmed {
            self.warm_starts.fetch_add(1, AtomicOrdering::Relaxed);
        } else {
            self.cold_starts.fetch_add(1, AtomicOrdering::Relaxed);
        }
        self.hooks.lp(relax.iterations, relax.warmed);
        Some(relax)
    }

    /// Warm diving heuristic: like the sequential dive, but each step
    /// re-solves from the previous step's basis, and an infeasible batch
    /// fix backtracks to a single-variable fix (either side) before the
    /// dive gives up — incumbents in the parallel engine come almost
    /// entirely from dives, so a fragile dive starves the whole search.
    fn dive_warm(&self, bounds: &[(f64, f64)], basis: Option<&BasisSnapshot>) -> Option<Vec<f64>> {
        let mut b = bounds.to_vec();
        let mut relax = self.dive_lp(&b, basis)?;
        for _ in 0..(self.int_vars.len() + 1) {
            if Instant::now() >= self.deadline {
                return None;
            }
            let vals = &relax.values;
            let mut fractional: Vec<(usize, f64, f64)> = self
                .int_vars
                .iter()
                .filter_map(|&j| {
                    let dist = (vals[j] - vals[j].round()).abs();
                    (dist > INT_EPS).then_some((j, vals[j], dist))
                })
                .collect();
            if fractional.is_empty() {
                let snapped = rounded(vals, &self.int_vars);
                return self.model.is_feasible(&snapped, 1e-6).then_some(snapped);
            }
            fractional.sort_by(|a, b| a.2.total_cmp(&b.2));
            let &(j0, x0, _) = fractional.first().expect("nonempty");
            // Fix attempts, most to least aggressive: the near-integral
            // batch, then the least-fractional variable alone (nearest
            // side, then the other side).
            let mut advanced = false;
            for attempt in 0..3u8 {
                let mut nb = b.clone();
                let mut fixed_any = false;
                match attempt {
                    0 => {
                        for &(j, x, dist) in &fractional {
                            if nb[j].0 != nb[j].1 && (dist <= 0.1 || !fixed_any) {
                                let (lo, hi) = nb[j];
                                let v = x.round().clamp(lo, hi);
                                nb[j] = (v, v);
                                fixed_any = true;
                            }
                        }
                    }
                    1 | 2 => {
                        if b[j0].0 != b[j0].1 {
                            let (lo, hi) = b[j0];
                            let near = x0.round();
                            let v = if attempt == 1 {
                                near
                            } else if near >= x0 {
                                x0.floor()
                            } else {
                                x0.ceil()
                            }
                            .clamp(lo, hi);
                            nb[j0] = (v, v);
                            fixed_any = true;
                        }
                    }
                    _ => unreachable!(),
                }
                if !fixed_any || nb == b {
                    continue;
                }
                if let Some(r) = self.dive_lp(&nb, Some(&relax.basis)) {
                    b = nb;
                    relax = r;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return None;
            }
        }
        None
    }

    /// One worker's search loop.
    fn worker(&self, w: usize) {
        loop {
            // Pull the best node; compute the global bound while holding
            // the lock so in-flight peers are accounted for.
            let (node, global_bound) = {
                let mut q = self.queue.lock();
                loop {
                    if q.stop.is_some() {
                        return;
                    }
                    if let Some(HeapNode(node)) = q.heap.pop() {
                        q.in_flight[w] = Some(node.bound);
                        let mut g = node.bound;
                        for b in q.in_flight.iter().flatten() {
                            g = g.max(*b);
                        }
                        if let Some(top) = q.heap.peek() {
                            g = g.max(top.0.bound);
                        }
                        break (node, g);
                    }
                    if q.in_flight.iter().all(Option::is_none) {
                        q.stop = Some(Stop::Exhausted);
                        self.work_cv.notify_all();
                        return;
                    }
                    // Peers are still expanding; wait for pushes (with a
                    // timeout so deadline expiry cannot strand us).
                    self.work_cv.wait_for(&mut q, Duration::from_millis(20));
                }
            };

            let inc_obj = self.incumbent_objective();
            if let Some(inc) = inc_obj {
                let gap = (global_bound - inc) / inc.abs().max(1.0);
                if gap <= self.relative_gap {
                    self.request_stop(w, Stop::GapReached, global_bound);
                    return;
                }
            }
            if Instant::now() >= self.deadline
                || self.nodes_explored.load(AtomicOrdering::Relaxed) >= self.max_nodes
            {
                self.request_stop(w, Stop::Budget, global_bound);
                return;
            }
            if let Some(inc) = inc_obj {
                if node.bound <= inc + self.relative_gap * inc.abs().max(1.0) {
                    self.finish_node(w); // pruned by bound
                    continue;
                }
            }

            // Solve this node's relaxation (warm from the parent basis
            // when allowed; `solve_relaxation` falls back cold itself).
            let basis_ref = if self.warm_lp {
                node.basis.as_deref()
            } else {
                None
            };
            let relax = match self.ctx.solve_relaxation(&node.bounds, basis_ref) {
                Ok(r) => r,
                Err(MilpError::Infeasible) => {
                    self.finish_node(w);
                    continue;
                }
                Err(_) => {
                    // Numerical failure: drop the node but record the
                    // hole so the final status/bound stay honest.
                    self.relaxation_failures
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    self.hooks.relaxation_failures.inc();
                    let mut fb = self.failed_bound.lock();
                    *fb = fb.max(node.bound);
                    drop(fb);
                    self.finish_node(w);
                    continue;
                }
            };
            self.lp_iterations
                .fetch_add(relax.iterations, AtomicOrdering::Relaxed);
            if relax.warmed {
                self.warm_starts.fetch_add(1, AtomicOrdering::Relaxed);
            } else {
                self.cold_starts.fetch_add(1, AtomicOrdering::Relaxed);
            }
            self.hooks.lp(relax.iterations, relax.warmed);
            let explored = self.nodes_explored.fetch_add(1, AtomicOrdering::Relaxed) + 1;
            self.hooks.nodes.inc();

            let node_bound = self.internal(relax.objective);
            if let Some(inc) = self.incumbent_objective() {
                if node_bound <= inc + self.relative_gap * inc.abs().max(1.0) {
                    self.finish_node(w); // pruned by bound
                    continue;
                }
            }

            // Find the most fractional integer variable.
            let vals = &relax.values;
            let mut branch_var: Option<(usize, f64)> = None;
            for &j in &self.int_vars {
                let frac = (vals[j] - vals[j].round()).abs();
                if frac > INT_EPS {
                    let score = (vals[j] - vals[j].floor() - 0.5).abs();
                    match branch_var {
                        Some((_, best)) if best <= score => {}
                        _ => branch_var = Some((j, score)),
                    }
                }
            }
            match branch_var {
                None => {
                    // Integer feasible.
                    let snapped = rounded(vals, &self.int_vars);
                    self.consider(&snapped);
                }
                Some((j, _)) => {
                    // Dive eagerly until a first incumbent exists (without
                    // one, nothing prunes and a budgeted solve can end
                    // empty-handed), occasionally afterwards.
                    let cadence = if self.incumbent_objective().is_none() {
                        16
                    } else {
                        128
                    };
                    if explored % cadence == 0 {
                        if let Some(dived) = self.dive_warm(&node.bounds, Some(&relax.basis)) {
                            self.consider(&dived);
                        }
                    }
                    let snapped = rounded(vals, &self.int_vars);
                    self.consider(&snapped);

                    let x = vals[j];
                    let (lo, hi) = node.bounds[j];
                    let child_basis = Arc::new(relax.basis);
                    let mut children = Vec::with_capacity(2);
                    // Down branch: x <= floor.
                    let down_hi = x.floor();
                    if down_hi >= lo - INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (lo, down_hi.max(lo));
                        children.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                            basis: Some(Arc::clone(&child_basis)),
                        }));
                    }
                    // Up branch: x >= ceil.
                    let up_lo = x.ceil();
                    if up_lo <= hi + INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (up_lo.min(hi), hi);
                        children.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                            basis: Some(child_basis),
                        }));
                    }
                    if !children.is_empty() {
                        let mut q = self.queue.lock();
                        for c in children {
                            q.heap.push(c);
                        }
                    }
                }
            }
            self.finish_node(w);
        }
    }
}

impl Model {
    /// The parallel warm engine: a pool of `threads` workers over a
    /// shared best-first queue with warm-started relaxations. With
    /// `threads == 1`, processing order is deterministic.
    fn solve_parallel(
        &self,
        config: &SolveConfig,
        warm_start: Option<&[f64]>,
        threads: usize,
        hooks: &MilpHooks,
    ) -> Result<MilpSolution, MilpError> {
        let start = Instant::now();
        let internal = |obj: f64| match self.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        };
        let external = internal; // involution

        let root_bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let int_vars: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect();

        let ctx = WarmContext::new(self);
        // Root relaxation failures abort the solve, exactly like the
        // sequential engine — there is no tree to fall back on yet.
        let root = ctx.solve_relaxation(&root_bounds, None)?;
        hooks.nodes.inc();
        hooks.lp(root.iterations, root.warmed);

        let shared = Shared {
            model: self,
            ctx,
            int_vars,
            deadline: start + config.time_limit,
            relative_gap: config.relative_gap,
            max_nodes: config.max_nodes,
            warm_lp: config.warm_lp,
            queue: Mutex::new(SearchQueue {
                heap: BinaryHeap::new(),
                in_flight: vec![None; threads],
                stop: None,
                stop_bound: f64::NEG_INFINITY,
            }),
            work_cv: Condvar::new(),
            incumbent: Mutex::new(None),
            failed_bound: Mutex::new(f64::NEG_INFINITY),
            nodes_explored: AtomicU64::new(1),
            lp_iterations: AtomicU64::new(root.iterations),
            warm_starts: AtomicU64::new(0),
            cold_starts: AtomicU64::new(1),
            relaxation_failures: AtomicU64::new(0),
            hooks,
        };

        if let Some(ws) = warm_start {
            if ws.len() == self.vars.len() && self.is_feasible(ws, 1e-6) {
                let snapped = rounded(ws, &shared.int_vars);
                shared.consider(&snapped);
            }
        }

        let collect = |status: SolveStatus, objective: f64, values: Vec<f64>, best_bound: f64| {
            MilpSolution {
                status,
                objective,
                values,
                best_bound,
                nodes_explored: shared.nodes_explored.load(AtomicOrdering::Relaxed),
                lp_iterations: shared.lp_iterations.load(AtomicOrdering::Relaxed),
                warm_starts: shared.warm_starts.load(AtomicOrdering::Relaxed),
                cold_starts: shared.cold_starts.load(AtomicOrdering::Relaxed),
                relaxation_failures: shared.relaxation_failures.load(AtomicOrdering::Relaxed),
            }
        };

        // Integral root: optimal outright (if it validates).
        if is_integral(&root.values, &shared.int_vars) {
            let snapped = rounded(&root.values, &shared.int_vars);
            shared.consider(&snapped);
            let inc = shared.incumbent.lock().take();
            if let Some((obj, values)) = inc {
                let e = external(obj);
                return Ok(collect(SolveStatus::Optimal, e, values, e));
            }
        }
        // Root heuristics: rounding, then a warm LP-guided dive.
        let snapped = rounded(&root.values, &shared.int_vars);
        shared.consider(&snapped);
        if let Some(dived) = shared.dive_warm(&root_bounds, Some(&root.basis)) {
            shared.consider(&dived);
        }

        let root_bound = internal(root.objective);
        shared.queue.lock().heap.push(HeapNode(Node {
            bounds: root_bounds,
            bound: root_bound,
            depth: 0,
            basis: Some(Arc::new(root.basis)),
        }));

        crossbeam::thread::scope(|s| {
            for w in 0..threads {
                let shared = &shared;
                s.spawn(move |_| shared.worker(w));
            }
        })
        .expect("branch-and-bound worker panicked");

        let (stop, stop_bound) = {
            let q = shared.queue.lock();
            (q.stop.unwrap_or(Stop::Exhausted), q.stop_bound)
        };
        let incumbent = shared.incumbent.lock().take();
        let failures = shared.relaxation_failures.load(AtomicOrdering::Relaxed);
        let failed_bound = *shared.failed_bound.lock();

        match stop {
            Stop::GapReached => {
                let (obj, values) = incumbent.expect("gap stop implies an incumbent");
                Ok(collect(
                    SolveStatus::Optimal,
                    external(obj),
                    values,
                    external(stop_bound.max(obj)),
                ))
            }
            Stop::Budget => match incumbent {
                Some((obj, values)) => Ok(collect(
                    SolveStatus::Feasible,
                    external(obj),
                    values,
                    external(stop_bound.max(obj)),
                )),
                None => Err(MilpError::TimeLimitNoSolution),
            },
            Stop::Exhausted => match incumbent {
                Some((obj, values)) => {
                    // With dropped nodes the tree has holes: optimality
                    // cannot be claimed, and the bound must cover them.
                    if failures > 0 {
                        Ok(collect(
                            SolveStatus::Feasible,
                            external(obj),
                            values,
                            external(failed_bound.max(obj)),
                        ))
                    } else {
                        let e = external(obj);
                        Ok(collect(SolveStatus::Optimal, e, values, e))
                    }
                }
                None if failures > 0 => Err(MilpError::IterationLimit),
                None => Err(MilpError::Infeasible),
            },
        }
    }
}

fn is_integral(vals: &[f64], int_vars: &[usize]) -> bool {
    int_vars
        .iter()
        .all(|&j| (vals[j] - vals[j].round()).abs() <= INT_EPS)
}

fn rounded(vals: &[f64], int_vars: &[usize]) -> Vec<f64> {
    let mut out = vals.to_vec();
    for &j in int_vars {
        out[j] = out[j].round();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Relation;

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 5.0, 2.0).unwrap();
        m.add_constraint("c", vec![(x, 1.0)], Relation::Le, 3.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_optimum() {
        // Classic: values 60/100/120, weights 10/20/30, cap 50 -> 220.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 60.0);
        let b = m.add_binary("b", 100.0);
        let c = m.add_binary("c", 120.0);
        m.add_constraint(
            "cap",
            vec![(a, 10.0), (b, 20.0), (c, 30.0)],
            Relation::Le,
            50.0,
        )
        .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 220.0).abs() < 1e-6);
        assert!(!sol.is_one(a) && sol.is_one(b) && sol.is_one(c));
    }

    #[test]
    fn observed_solve_matches_and_records() {
        let build = || {
            let mut m = Model::new(Sense::Maximize);
            let a = m.add_binary("a", 60.0);
            let b = m.add_binary("b", 100.0);
            let c = m.add_binary("c", 120.0);
            m.add_constraint(
                "cap",
                vec![(a, 10.0), (b, 20.0), (c, 30.0)],
                Relation::Le,
                50.0,
            )
            .unwrap();
            m
        };
        // One thread keeps node processing deterministic, so plain and
        // observed runs are comparable tree for tree.
        let config = SolveConfig {
            threads: 1,
            ..SolveConfig::default()
        };
        let plain = build().solve(&config).unwrap();
        let obs = Obs::recording();
        let observed = build().solve_observed(&config, &obs).unwrap();
        // Hooks never branch the search: identical solution and tree.
        assert_eq!(observed.status, plain.status);
        assert!((observed.objective - plain.objective).abs() < 1e-9);
        assert_eq!(observed.values, plain.values);
        assert_eq!(observed.nodes_explored, plain.nodes_explored);
        // The hooks mirrored the solution's own accounting.
        let snap = obs.snapshot();
        assert_eq!(
            snap.counters.get("milp/nodes").copied(),
            Some(plain.nodes_explored)
        );
        assert_eq!(
            snap.counters.get("milp/warm_starts").copied().unwrap_or(0)
                + snap.counters.get("milp/cold_starts").copied().unwrap_or(0),
            plain.warm_starts + plain.cold_starts
        );
        let pivots = snap
            .histograms
            .get("milp/pivots_per_node")
            .expect("pivot histogram registered");
        assert_eq!(pivots.sum, plain.lp_iterations);
    }

    #[test]
    fn minimize_set_cover() {
        // Cover {1,2,3} with sets A={1,2} cost 2, B={2,3} cost 2,
        // C={1,2,3} cost 3 -> pick C (cost 3) vs A+B (cost 4).
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("A", 2.0);
        let b = m.add_binary("B", 2.0);
        let c = m.add_binary("C", 3.0);
        m.add_constraint("e1", vec![(a, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        m.add_constraint("e2", vec![(a, 1.0), (b, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        m.add_constraint("e3", vec![(b, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!(sol.is_one(c));
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 5 (1+1+3... build
        // explicitly): costs[i][j].
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = Some(m.add_binary(format!("x{i}{j}"), costs[i][j]));
            }
        }
        for i in 0..3 {
            m.add_constraint(
                format!("row{i}"),
                (0..3).map(|j| (vars[i][j].unwrap(), 1.0)),
                Relation::Eq,
                1.0,
            )
            .unwrap();
            m.add_constraint(
                format!("col{i}"),
                (0..3).map(|j| (vars[j][i].unwrap(), 1.0)),
                Relation::Eq,
                1.0,
            )
            .unwrap();
        }
        let sol = m.solve(&SolveConfig::default()).unwrap();
        // Optimal: (0,1)=1, (1,0)=2, (2,2)=2 -> 5.
        assert!((sol.objective - 5.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_integer_model() {
        // x + y = 1.5 with x, y binary has no integer solution but a
        // feasible relaxation.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.5)
            .unwrap();
        assert_eq!(m.solve(&SolveConfig::default()), Err(MilpError::Infeasible));
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // maximize 5a + x  s.t. 3a + x <= 4, x in [0, 2], a binary.
        // a=1, x=1 -> 6.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 5.0);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0).unwrap();
        m.add_constraint("c", vec![(a, 3.0), (x, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(sol.is_one(a));
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn general_integers_branch_correctly() {
        // maximize x + y, 2x + 3y <= 12, x,y integer in [0, 5].
        // Optimum: x=5, y=0 -> 5? 2*5=10<=12, y can be 0; x=4,y=1: 11<=12
        // obj 5; x=3,y=2: 12<=12 obj 5. So 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 5.0, 1.0).unwrap();
        let y = m.add_var("y", VarKind::Integer, 0.0, 5.0, 1.0).unwrap();
        m.add_constraint("c", vec![(x, 2.0), (y, 3.0)], Relation::Le, 12.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn larger_knapsack_matches_dp() {
        // 20-item knapsack with deterministic pseudo-random data; verify
        // against dynamic programming.
        let n = 20usize;
        let values: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 50 + 1) as f64).collect();
        let weights: Vec<usize> = (0..n).map(|i| (i * 53 + 7) % 30 + 1).collect();
        let cap = 80usize;
        // DP.
        let mut dp = vec![0.0_f64; cap + 1];
        for i in 0..n {
            for w in (weights[i]..=cap).rev() {
                dp[w] = dp[w].max(dp[w - weights[i]] + values[i]);
            }
        }
        let best = dp[cap];
        // MILP.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), values[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().enumerate().map(|(i, &v)| (v, weights[i] as f64)),
            Relation::Le,
            cap as f64,
        )
        .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective - best).abs() < 1e-6,
            "milp {} vs dp {}",
            sol.objective,
            best
        );
    }

    #[test]
    fn time_limit_returns_feasible_or_error() {
        // A stress model with an immediate rounding incumbent: tiny time
        // limit must still return *something* sensible.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..30)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 7) as f64))
            .collect();
        for k in 0..10 {
            m.add_constraint(
                format!("c{k}"),
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| (i + k) % 3 != 0)
                    .map(|(i, &v)| (v, 1.0 + (i % 5) as f64)),
                Relation::Le,
                17.0,
            )
            .unwrap();
        }
        let config = SolveConfig {
            time_limit: Duration::from_millis(1),
            ..SolveConfig::default()
        };
        match m.solve(&config) {
            Ok(sol) => assert!(m.is_feasible(&sol.values, 1e-6)),
            Err(MilpError::TimeLimitNoSolution) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn best_bound_brackets_objective() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 3.0);
        let b = m.add_binary("b", 4.0);
        m.add_constraint("c", vec![(a, 2.0), (b, 3.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!(sol.best_bound >= sol.objective - 1e-6);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
    }

    /// A mid-sized mixed model with a unique optimum for engine-parity
    /// tests.
    fn parity_model() -> Model {
        let n = 16usize;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), ((i * 29 + 13) % 31 + 1) as f64))
            .collect();
        let y = m.add_continuous("y", 0.0, 3.0, 0.5).unwrap();
        m.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 19 + 5) % 11 + 1) as f64))
                .chain(std::iter::once((y, 2.0))),
            Relation::Le,
            31.0,
        )
        .unwrap();
        for k in 0..3 {
            m.add_constraint(
                format!("side{k}"),
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == k)
                    .map(|(_, &v)| (v, 1.0)),
                Relation::Le,
                4.0,
            )
            .unwrap();
        }
        m
    }

    #[test]
    fn engines_agree_on_objective() {
        let m = parity_model();
        let legacy = SolveConfig {
            threads: 1,
            warm_lp: false,
            ..SolveConfig::default()
        };
        let warm1 = SolveConfig {
            threads: 1,
            warm_lp: true,
            ..SolveConfig::default()
        };
        let warm4 = SolveConfig {
            threads: 4,
            warm_lp: true,
            ..SolveConfig::default()
        };
        let a = m.solve(&legacy).unwrap();
        let b = m.solve(&warm1).unwrap();
        let c = m.solve(&warm4).unwrap();
        assert_eq!(a.status, SolveStatus::Optimal);
        assert_eq!(b.status, SolveStatus::Optimal);
        assert_eq!(c.status, SolveStatus::Optimal);
        assert!((a.objective - b.objective).abs() < 1e-6, "{} vs {}", a.objective, b.objective);
        assert!((a.objective - c.objective).abs() < 1e-6, "{} vs {}", a.objective, c.objective);
    }

    #[test]
    fn warm_engine_reports_warm_starts() {
        let m = parity_model();
        let cfg = SolveConfig {
            threads: 1,
            warm_lp: true,
            ..SolveConfig::default()
        };
        let sol = m.solve(&cfg).unwrap();
        assert!(
            sol.warm_starts > 0,
            "expected warm starts, got {sol}",
        );
        assert_eq!(sol.relaxation_failures, 0);
    }

    #[test]
    fn legacy_engine_reports_cold_only() {
        let m = parity_model();
        let cfg = SolveConfig {
            threads: 1,
            warm_lp: false,
            ..SolveConfig::default()
        };
        let sol = m.solve(&cfg).unwrap();
        assert_eq!(sol.warm_starts, 0);
        assert!(sol.cold_starts >= sol.nodes_explored);
        assert!(sol.lp_iterations > 0);
        assert_eq!(sol.relaxation_failures, 0);
    }

    #[test]
    fn display_summarizes_solution() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 3.0);
        m.add_constraint("c", vec![(a, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        let text = sol.to_string();
        assert!(text.starts_with("optimal"), "{text}");
        assert!(text.contains("nodes="), "{text}");
        assert!(!text.contains("relaxation_failures"), "{text}");
    }

    #[test]
    fn parallel_respects_max_nodes() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..24)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 5) as f64))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
            Relation::Le,
            13.0,
        )
        .unwrap();
        let cfg = SolveConfig {
            threads: 4,
            max_nodes: 16,
            ..SolveConfig::default()
        };
        match m.solve(&cfg) {
            Ok(sol) => {
                // Overshoot is bounded by the worker count.
                assert!(sol.nodes_explored <= 16 + 4, "nodes {}", sol.nodes_explored);
                assert!(m.is_feasible(&sol.values, 1e-6));
            }
            Err(MilpError::TimeLimitNoSolution) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
