//! Branch-and-bound over the LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::model::{Model, Sense, VarKind};
use crate::simplex::solve_relaxation;
use crate::MilpError;

/// Integrality tolerance: LP values this close to an integer count as
/// integral.
const INT_EPS: f64 = 1e-6;

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveConfig {
    /// Wall-clock budget. The paper caps Gurobi at 5 minutes for the
    /// Oracle policy; harnesses here default much lower.
    pub time_limit: Duration,
    /// Stop when `(best_bound − incumbent) / max(|incumbent|, 1)` falls
    /// below this relative gap.
    pub relative_gap: f64,
    /// Hard cap on explored branch-and-bound nodes.
    pub max_nodes: u64,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            time_limit: Duration::from_secs(30),
            relative_gap: 1e-6,
            max_nodes: 200_000,
        }
    }
}

impl SolveConfig {
    /// A configuration with the given time limit and defaults elsewhere.
    pub fn with_time_limit(time_limit: Duration) -> Self {
        SolveConfig {
            time_limit,
            ..SolveConfig::default()
        }
    }
}

/// How the solve terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal within the gap tolerance.
    Optimal,
    /// Feasible incumbent returned, but the time/node budget expired
    /// before proving optimality.
    Feasible,
}

/// A feasible MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective of `values` in the model's own sense.
    pub objective: f64,
    /// One value per model variable; integers are exactly integral.
    pub values: Vec<f64>,
    /// The best LP bound at termination (equals `objective` when optimal).
    pub best_bound: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
}

impl MilpSolution {
    /// Value of a variable in this solution.
    ///
    /// # Panics
    ///
    /// Panics on a foreign variable id.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.0]
    }

    /// True if the binary/integer variable rounds to 1.
    ///
    /// # Panics
    ///
    /// Panics on a foreign variable id.
    pub fn is_one(&self, var: crate::VarId) -> bool {
        self.values[var.0].round() == 1.0
    }
}

/// A branch-and-bound node: bound overrides relative to the model.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// LP bound inherited from the parent (in internal maximize terms).
    bound: f64,
    depth: u32,
}

/// Heap ordering: best bound first, deeper first on ties (dives toward
/// integer solutions).
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .bound
            .total_cmp(&other.0.bound)
            .then(self.0.depth.cmp(&other.0.depth))
    }
}

impl Model {
    /// Solves the model by branch-and-bound.
    ///
    /// Returns the best integer-feasible solution found. With an empty
    /// integer set this is a single LP solve.
    ///
    /// # Errors
    ///
    /// - [`MilpError::Infeasible`] if no integer-feasible point exists
    ///   (proven before the budget expires);
    /// - [`MilpError::Unbounded`] if the root relaxation is unbounded;
    /// - [`MilpError::TimeLimitNoSolution`] if the budget expired before
    ///   any feasible solution was found;
    /// - [`MilpError::IterationLimit`] on simplex breakdown.
    pub fn solve(&self, config: &SolveConfig) -> Result<MilpSolution, MilpError> {
        self.solve_with_warm_start(config, None)
    }

    /// Like [`Model::solve`], but seeds branch-and-bound with a known
    /// feasible assignment (e.g. from a greedy heuristic). The warm start
    /// is validated; an infeasible one is silently ignored. Guarantees
    /// that a time-limited solve returns at least the warm-start quality.
    ///
    /// # Errors
    ///
    /// See [`Model::solve`].
    pub fn solve_with_warm_start(
        &self,
        config: &SolveConfig,
        warm_start: Option<&[f64]>,
    ) -> Result<MilpSolution, MilpError> {
        let start = Instant::now();
        // Internal sense: maximize (flip objective for minimize models).
        let internal = |obj: f64| match self.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        };
        let external = internal; // involution

        let root_bounds: Vec<(f64, f64)> = self.vars.iter().map(|v| (v.lower, v.upper)).collect();
        let int_vars: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect();

        let (root_obj, root_vals) = solve_relaxation(self, &root_bounds)?;
        let mut nodes_explored: u64 = 1;

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // internal objective
        if let Some(ws) = warm_start {
            if ws.len() == self.vars.len() && self.is_feasible(ws, 1e-6) {
                let snapped = rounded(ws, &int_vars);
                if self.is_feasible(&snapped, 1e-6) {
                    incumbent = Some((internal(self.objective_value(&snapped)), snapped));
                }
            }
        }
        let consider = |vals: &[f64],
                            incumbent: &mut Option<(f64, Vec<f64>)>| {
            if !self.is_feasible(vals, 1e-6) {
                return;
            }
            let obj = internal(self.objective_value(vals));
            match incumbent {
                Some((best, _)) if *best >= obj => {}
                _ => *incumbent = Some((obj, vals.to_vec())),
            }
        };

        // Integral root?
        if is_integral(&root_vals, &int_vars) {
            let vals = rounded(&root_vals, &int_vars);
            consider(&vals, &mut incumbent);
            if let Some((obj, values)) = incumbent {
                return Ok(MilpSolution {
                    status: SolveStatus::Optimal,
                    objective: external(obj),
                    values,
                    best_bound: external(obj),
                    nodes_explored,
                });
            }
        }
        // Heuristics at the root for an early incumbent: cheap rounding,
        // then an LP-guided dive.
        let vals = rounded(&root_vals, &int_vars);
        consider(&vals, &mut incumbent);
        let deadline = start + config.time_limit;
        if let Some(dived) = self.dive(&root_bounds, &int_vars, deadline) {
            consider(&dived, &mut incumbent);
        }

        let mut heap = BinaryHeap::new();
        heap.push(HeapNode(Node {
            bounds: root_bounds,
            bound: internal(root_obj),
            depth: 0,
        }));
        let mut best_bound;

        while let Some(HeapNode(node)) = heap.pop() {
            best_bound = node.bound;
            if let Some((inc_obj, _)) = &incumbent {
                let gap = (best_bound - inc_obj) / inc_obj.abs().max(1.0);
                if gap <= config.relative_gap {
                    let (obj, values) = incumbent.expect("checked above");
                    // The proven bound cannot be worse than the incumbent.
                    return Ok(MilpSolution {
                        status: SolveStatus::Optimal,
                        objective: external(obj),
                        values,
                        best_bound: external(best_bound.max(obj)),
                        nodes_explored,
                    });
                }
            }
            if start.elapsed() >= config.time_limit || nodes_explored >= config.max_nodes {
                return match incumbent {
                    Some((obj, values)) => Ok(MilpSolution {
                        status: SolveStatus::Feasible,
                        objective: external(obj),
                        values,
                        best_bound: external(best_bound),
                        nodes_explored,
                    }),
                    None => Err(MilpError::TimeLimitNoSolution),
                };
            }

            // Solve this node's relaxation.
            let (obj, vals) = match solve_relaxation(self, &node.bounds) {
                Ok(r) => r,
                Err(MilpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            nodes_explored += 1;
            let node_bound = internal(obj);
            if let Some((inc_obj, _)) = &incumbent {
                if node_bound <= *inc_obj + config.relative_gap * inc_obj.abs().max(1.0) {
                    continue; // pruned by bound
                }
            }
            // Find the most fractional integer variable.
            let mut branch_var: Option<(usize, f64)> = None;
            for &j in &int_vars {
                let frac = (vals[j] - vals[j].round()).abs();
                if frac > INT_EPS {
                    let score = (vals[j] - vals[j].floor() - 0.5).abs();
                    match branch_var {
                        Some((_, best)) if best <= score => {}
                        _ => branch_var = Some((j, score)),
                    }
                }
            }
            match branch_var {
                None => {
                    // Integer feasible.
                    let snapped = rounded(&vals, &int_vars);
                    consider(&snapped, &mut incumbent);
                }
                Some((j, _)) => {
                    // Periodically dive from promising nodes for new
                    // incumbents (diving is ~|int_vars| LP solves, so
                    // keep it occasional).
                    if nodes_explored % 128 == 0 {
                        if let Some(dived) = self.dive(&node.bounds, &int_vars, deadline) {
                            consider(&dived, &mut incumbent);
                        }
                    }
                    let snapped = rounded(&vals, &int_vars);
                    consider(&snapped, &mut incumbent);
                    let x = vals[j];
                    let (lo, hi) = node.bounds[j];
                    // Down branch: x <= floor.
                    let down_hi = x.floor();
                    if down_hi >= lo - INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (lo, down_hi.max(lo));
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                        }));
                    }
                    // Up branch: x >= ceil.
                    let up_lo = x.ceil();
                    if up_lo <= hi + INT_EPS {
                        let mut b = node.bounds.clone();
                        b[j] = (up_lo.min(hi), hi);
                        heap.push(HeapNode(Node {
                            bounds: b,
                            bound: node_bound,
                            depth: node.depth + 1,
                        }));
                    }
                }
            }
        }

        // Tree exhausted: incumbent (if any) is optimal.
        match incumbent {
            Some((obj, values)) => Ok(MilpSolution {
                status: SolveStatus::Optimal,
                objective: external(obj),
                values,
                best_bound: external(obj),
                nodes_explored,
            }),
            None => Err(MilpError::Infeasible),
        }
    }
}

impl Model {
    /// LP-guided diving heuristic: starting from `bounds`, repeatedly fix
    /// the *least* fractional integer variable to its nearest integer and
    /// re-solve the relaxation, backtracking once per variable to the
    /// other side on infeasibility. Returns an integer-feasible
    /// assignment if the dive lands on one. This is the workhorse that
    /// turns fractional packing relaxations into good incumbents.
    fn dive(
        &self,
        bounds: &[(f64, f64)],
        int_vars: &[usize],
        deadline: Instant,
    ) -> Option<Vec<f64>> {
        let mut b = bounds.to_vec();
        // Each round fixes a *batch* of near-integral variables (plus at
        // least the least-fractional one), so a dive costs a handful of
        // LP solves rather than one per integer variable.
        for _ in 0..(int_vars.len() + 1) {
            if Instant::now() >= deadline {
                return None;
            }
            let (_, vals) = match solve_relaxation(self, &b) {
                Ok(r) => r,
                Err(_) => return None, // infeasible dive: give up
            };
            let mut fractional: Vec<(usize, f64, f64)> = int_vars
                .iter()
                .filter_map(|&j| {
                    let dist = (vals[j] - vals[j].round()).abs();
                    (dist > INT_EPS).then_some((j, vals[j], dist))
                })
                .collect();
            if fractional.is_empty() {
                let snapped = rounded(&vals, int_vars);
                return self.is_feasible(&snapped, 1e-6).then_some(snapped);
            }
            fractional.sort_by(|a, b| a.2.total_cmp(&b.2));
            let mut fixed_any = false;
            for &(j, x, dist) in &fractional {
                if b[j].0 != b[j].1 && (dist <= 0.1 || !fixed_any) {
                    let (lo, hi) = b[j];
                    let v = x.round().clamp(lo, hi);
                    b[j] = (v, v);
                    fixed_any = true;
                }
            }
            if !fixed_any {
                return None; // everything fractional is already fixed
            }
        }
        None
    }
}

fn is_integral(vals: &[f64], int_vars: &[usize]) -> bool {
    int_vars
        .iter()
        .all(|&j| (vals[j] - vals[j].round()).abs() <= INT_EPS)
}

fn rounded(vals: &[f64], int_vars: &[usize]) -> Vec<f64> {
    let mut out = vals.to_vec();
    for &j in int_vars {
        out[j] = out[j].round();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Relation;

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, 5.0, 2.0).unwrap();
        m.add_constraint("c", vec![(x, 1.0)], Relation::Le, 3.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_optimum() {
        // Classic: values 60/100/120, weights 10/20/30, cap 50 -> 220.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 60.0);
        let b = m.add_binary("b", 100.0);
        let c = m.add_binary("c", 120.0);
        m.add_constraint(
            "cap",
            vec![(a, 10.0), (b, 20.0), (c, 30.0)],
            Relation::Le,
            50.0,
        )
        .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 220.0).abs() < 1e-6);
        assert!(!sol.is_one(a) && sol.is_one(b) && sol.is_one(c));
    }

    #[test]
    fn minimize_set_cover() {
        // Cover {1,2,3} with sets A={1,2} cost 2, B={2,3} cost 2,
        // C={1,2,3} cost 3 -> pick C (cost 3) vs A+B (cost 4).
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("A", 2.0);
        let b = m.add_binary("B", 2.0);
        let c = m.add_binary("C", 3.0);
        m.add_constraint("e1", vec![(a, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        m.add_constraint("e2", vec![(a, 1.0), (b, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        m.add_constraint("e3", vec![(b, 1.0), (c, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!(sol.is_one(c));
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 5 (1+1+3... build
        // explicitly): costs[i][j].
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = [[None; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = Some(m.add_binary(format!("x{i}{j}"), costs[i][j]));
            }
        }
        for i in 0..3 {
            m.add_constraint(
                format!("row{i}"),
                (0..3).map(|j| (vars[i][j].unwrap(), 1.0)),
                Relation::Eq,
                1.0,
            )
            .unwrap();
            m.add_constraint(
                format!("col{i}"),
                (0..3).map(|j| (vars[j][i].unwrap(), 1.0)),
                Relation::Eq,
                1.0,
            )
            .unwrap();
        }
        let sol = m.solve(&SolveConfig::default()).unwrap();
        // Optimal: (0,1)=1, (1,0)=2, (2,2)=2 -> 5.
        assert!((sol.objective - 5.0).abs() < 1e-6, "objective {}", sol.objective);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_integer_model() {
        // x + y = 1.5 with x, y binary has no integer solution but a
        // feasible relaxation.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Relation::Eq, 1.5)
            .unwrap();
        assert_eq!(m.solve(&SolveConfig::default()), Err(MilpError::Infeasible));
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // maximize 5a + x  s.t. 3a + x <= 4, x in [0, 2], a binary.
        // a=1, x=1 -> 6.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 5.0);
        let x = m.add_continuous("x", 0.0, 2.0, 1.0).unwrap();
        m.add_constraint("c", vec![(a, 3.0), (x, 1.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(sol.is_one(a));
        assert!((sol.value(x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn general_integers_branch_correctly() {
        // maximize x + y, 2x + 3y <= 12, x,y integer in [0, 5].
        // Optimum: x=5, y=0 -> 5? 2*5=10<=12, y can be 0; x=4,y=1: 11<=12
        // obj 5; x=3,y=2: 12<=12 obj 5. So 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 5.0, 1.0).unwrap();
        let y = m.add_var("y", VarKind::Integer, 0.0, 5.0, 1.0).unwrap();
        m.add_constraint("c", vec![(x, 2.0), (y, 3.0)], Relation::Le, 12.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(m.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn larger_knapsack_matches_dp() {
        // 20-item knapsack with deterministic pseudo-random data; verify
        // against dynamic programming.
        let n = 20usize;
        let values: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 50 + 1) as f64).collect();
        let weights: Vec<usize> = (0..n).map(|i| (i * 53 + 7) % 30 + 1).collect();
        let cap = 80usize;
        // DP.
        let mut dp = vec![0.0_f64; cap + 1];
        for i in 0..n {
            for w in (weights[i]..=cap).rev() {
                dp[w] = dp[w].max(dp[w - weights[i]] + values[i]);
            }
        }
        let best = dp[cap];
        // MILP.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), values[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().enumerate().map(|(i, &v)| (v, weights[i] as f64)),
            Relation::Le,
            cap as f64,
        )
        .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(
            (sol.objective - best).abs() < 1e-6,
            "milp {} vs dp {}",
            sol.objective,
            best
        );
    }

    #[test]
    fn time_limit_returns_feasible_or_error() {
        // A stress model with an immediate rounding incumbent: tiny time
        // limit must still return *something* sensible.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..30)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 7) as f64))
            .collect();
        for k in 0..10 {
            m.add_constraint(
                format!("c{k}"),
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| (i + k) % 3 != 0)
                    .map(|(i, &v)| (v, 1.0 + (i % 5) as f64)),
                Relation::Le,
                17.0,
            )
            .unwrap();
        }
        let config = SolveConfig {
            time_limit: Duration::from_millis(1),
            ..SolveConfig::default()
        };
        match m.solve(&config) {
            Ok(sol) => assert!(m.is_feasible(&sol.values, 1e-6)),
            Err(MilpError::TimeLimitNoSolution) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn best_bound_brackets_objective() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 3.0);
        let b = m.add_binary("b", 4.0);
        m.add_constraint("c", vec![(a, 2.0), (b, 3.0)], Relation::Le, 4.0)
            .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        assert!(sol.best_bound >= sol.objective - 1e-6);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-6);
    }
}
