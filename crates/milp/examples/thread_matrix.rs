//! Prints the solver counters for each (threads, warm_lp) configuration
//! on the ~200-binary placement-shaped instance the benches use —
//! handy for eyeballing warm-start savings and engine parity.

use std::time::{Duration, Instant};

use flex_milp::{Model, Relation, Sense, SolveConfig};

fn placement_like(deps: usize, pairs: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let power: Vec<f64> = (0..deps).map(|d| ((d * 37 + 11) % 50 + 10) as f64).collect();
    let x: Vec<Vec<_>> = (0..deps)
        .map(|d| {
            (0..pairs)
                .map(|p| m.add_binary(format!("x{d}_{p}"), power[d]))
                .collect()
        })
        .collect();
    for (d, row) in x.iter().enumerate() {
        m.add_constraint(
            format!("assign{d}"),
            row.iter().map(|&v| (v, 1.0)),
            Relation::Le,
            1.0,
        )
        .unwrap();
    }
    let total: f64 = power.iter().sum();
    let cap = total * 0.8 / pairs as f64;
    for p in 0..pairs {
        m.add_constraint(
            format!("cap{p}"),
            (0..deps).map(|d| (x[d][p], power[d])),
            Relation::Le,
            cap,
        )
        .unwrap();
    }
    m
}

fn main() {
    let m = placement_like(40, 5);
    for (threads, warm_lp) in [(1, false), (1, true), (2, true), (4, true)] {
        let cfg = SolveConfig {
            threads,
            warm_lp,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..SolveConfig::default()
        };
        let start = Instant::now();
        match m.solve(&cfg) {
            Ok(sol) => println!(
                "threads={threads} warm={warm_lp}: {sol} ({:.3}s)",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => println!(
                "threads={threads} warm={warm_lp}: ERROR {e} ({:.3}s)",
                start.elapsed().as_secs_f64()
            ),
        }
    }
}
