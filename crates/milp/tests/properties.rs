//! Property tests: the MILP solver against brute force and its own LP bound.

use flex_milp::simplex::solve_relaxation;
use flex_milp::{Model, Relation, Sense, SolveConfig, VarKind};
use proptest::prelude::*;

/// Builds a random feasible maximize-LP: non-negative variables with upper
/// bounds and `Σ aᵢxᵢ ≤ b` rows with non-negative coefficients (so x = 0
/// is always feasible).
fn arb_lp() -> impl Strategy<Value = Model> {
    let var = (0.1f64..10.0, 0.5f64..20.0); // (objective, upper bound)
    let vars = proptest::collection::vec(var, 1..6);
    let rows = proptest::collection::vec(
        (
            proptest::collection::vec(0.0f64..5.0, 6),
            1.0f64..40.0,
        ),
        0..5,
    );
    (vars, rows).prop_map(|(vars, rows)| {
        let mut m = Model::new(Sense::Maximize);
        let ids: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, (obj, ub))| {
                m.add_continuous(format!("x{i}"), 0.0, *ub, *obj).unwrap()
            })
            .collect();
        for (k, (coeffs, rhs)) in rows.iter().enumerate() {
            let terms: Vec<_> = ids
                .iter()
                .zip(coeffs)
                .map(|(&id, &c)| (id, c))
                .collect();
            m.add_constraint(format!("r{k}"), terms, Relation::Le, *rhs)
                .unwrap();
        }
        m
    })
}

/// A random knapsack small enough for exhaustive search.
fn arb_knapsack() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, f64)> {
    (1usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec(1.0f64..50.0, n..=n),
            proptest::collection::vec(1.0f64..20.0, n..=n),
            10.0f64..60.0,
        )
    })
}

fn brute_force_knapsack(values: &[f64], weights: &[f64], cap: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0_f64;
    for mask in 0u32..(1 << n) {
        let mut v = 0.0;
        let mut w = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                v += values[i];
                w += weights[i];
            }
        }
        if w <= cap {
            best = best.max(v);
        }
    }
    best
}

/// A random mixed-integer maximize model: a blend of integer and
/// continuous variables, `Σ aᵢxᵢ ≤ b` rows with non-negative
/// coefficients (x = 0 always feasible, so every model solves).
fn arb_mip() -> impl Strategy<Value = Model> {
    // (is_integer, objective, upper bound)
    let var = (proptest::bool::ANY, 0.1f64..10.0, 1.0f64..4.0);
    let vars = proptest::collection::vec(var, 2..8);
    let rows = proptest::collection::vec(
        (proptest::collection::vec(0.0f64..5.0, 8), 2.0f64..30.0),
        1..5,
    );
    (vars, rows).prop_map(|(vars, rows)| {
        let mut m = Model::new(Sense::Maximize);
        let ids: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, (is_int, obj, ub))| {
                if *is_int {
                    m.add_var(format!("z{i}"), VarKind::Integer, 0.0, ub.round().max(1.0), *obj)
                        .unwrap()
                } else {
                    m.add_continuous(format!("x{i}"), 0.0, *ub, *obj).unwrap()
                }
            })
            .collect();
        for (k, (coeffs, rhs)) in rows.iter().enumerate() {
            let terms: Vec<_> = ids.iter().zip(coeffs).map(|(&id, &c)| (id, c)).collect();
            m.add_constraint(format!("r{k}"), terms, Relation::Le, *rhs)
                .unwrap();
        }
        m
    })
}

fn config_for(threads: usize, warm_lp: bool) -> SolveConfig {
    SolveConfig {
        threads,
        warm_lp,
        ..SolveConfig::default()
    }
}

/// Regression for a phase-1 bug: rows whose initial residual is negative
/// (e.g. `Σ terms − M ≤ −e` with all variables starting at 0) previously
/// produced a non-identity artificial basis and false infeasibility.
#[test]
fn negative_residual_rows_are_feasible() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_binary("x", 10.0);
    let big = m.add_continuous("M", 0.0, 2.0, -1.0).unwrap();
    let small = m.add_continuous("m", 0.0, 2.0, 1.0).unwrap();
    // 0.4·x − M ≤ −0.25  (forces M ≥ 0.25 + 0.4 x)
    m.add_constraint("up", vec![(x, 0.4), (big, -1.0)], Relation::Le, -0.25)
        .unwrap();
    // 0.4·x − m ≥ −0.25  (m ≤ 0.25 + 0.4 x)
    m.add_constraint("down", vec![(x, 0.4), (small, -1.0)], Relation::Ge, -0.25)
        .unwrap();
    let sol = m.solve(&SolveConfig::default()).unwrap();
    // Optimal: x = 1 (10 pts), M = m = 0.65 (spread cost 0).
    assert!(sol.is_one(x), "x should be selected: {sol:?}");
    assert!((sol.objective - 10.0).abs() < 1e-6, "objective {}", sol.objective);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Optimal LP solutions are feasible and report their own objective.
    #[test]
    fn lp_solutions_are_feasible(m in arb_lp()) {
        let bounds: Vec<(f64, f64)> = (0..m.var_count())
            .map(|_| (0.0, f64::MAX))
            .collect();
        // Use the model's own bounds (intersection keeps them).
        let (obj, vals) = solve_relaxation(&m, &bounds).unwrap();
        prop_assert!(m.is_feasible(&vals, 1e-5) || {
            // Continuous model: integrality can't fail, so feasibility must hold.
            false
        }, "infeasible LP solution: {vals:?}");
        prop_assert!((m.objective_value(&vals) - obj).abs() < 1e-5,
            "objective mismatch: {} vs {}", m.objective_value(&vals), obj);
    }

    /// MILP knapsack matches exhaustive search.
    #[test]
    fn knapsack_matches_brute_force((values, weights, cap) in arb_knapsack()) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, v)| m.add_binary(format!("x{i}"), *v))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)),
            Relation::Le,
            cap,
        )
        .unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        let best = brute_force_knapsack(&values, &weights, cap);
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "milp {} vs brute force {}", sol.objective, best);
        prop_assert!(m.is_feasible(&sol.values, 1e-6));
    }

    /// The integer optimum never exceeds the LP relaxation bound
    /// (maximize), and the solver's reported best_bound brackets it.
    #[test]
    fn milp_bounded_by_relaxation((values, weights, cap) in arb_knapsack()) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, v)| m.add_binary(format!("x{i}"), *v))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(&weights).map(|(&v, &w)| (v, w)),
            Relation::Le,
            cap,
        )
        .unwrap();
        let bounds: Vec<(f64, f64)> = (0..m.var_count()).map(|_| (0.0, 1.0)).collect();
        let (lp_obj, _) = solve_relaxation(&m, &bounds).unwrap();
        let sol = m.solve(&SolveConfig::default()).unwrap();
        prop_assert!(sol.objective <= lp_obj + 1e-6,
            "integer {} exceeds relaxation {}", sol.objective, lp_obj);
        prop_assert!(sol.best_bound + 1e-6 >= sol.objective);
    }

    /// The parallel engine finds the same optimal objective as a
    /// single-threaded solve, at 2 and 4 workers.
    #[test]
    fn parallel_solver_matches_single_thread(m in arb_mip()) {
        let reference = m.solve(&config_for(1, true)).unwrap();
        for threads in [2usize, 4] {
            let sol = m.solve(&config_for(threads, true)).unwrap();
            prop_assert!(
                (sol.objective - reference.objective).abs() < 1e-6,
                "threads={threads}: {} vs {}", sol.objective, reference.objective
            );
            prop_assert!(m.is_feasible(&sol.values, 1e-6));
            prop_assert_eq!(sol.relaxation_failures, 0);
        }
    }

    /// Warm-started node relaxations change the work done, never the
    /// answer: objectives match cold-started solves, and warm never
    /// spends more simplex pivots than cold.
    #[test]
    fn warm_starts_match_cold_starts(m in arb_mip()) {
        let cold = m.solve(&config_for(1, false)).unwrap();
        let warm = m.solve(&config_for(1, true)).unwrap();
        prop_assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}", warm.objective, cold.objective
        );
        prop_assert!(m.is_feasible(&warm.values, 1e-6));
        prop_assert_eq!(warm.relaxation_failures, 0);
        prop_assert_eq!(cold.warm_starts, 0);
    }
}
