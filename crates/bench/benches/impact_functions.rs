//! Criterion: impact-function evaluation and registry lookup — the inner
//! loop of Algorithm 1's candidate scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use flex_core::online::ImpactRegistry;
use flex_core::power::Fraction;
use flex_core::workload::impact::scenarios;
use flex_core::workload::{DeploymentId, WorkloadCategory};

fn bench_impact(c: &mut Criterion) {
    let f = scenarios::realistic_1().software_redundant;
    c.bench_function("impact/eval", |b| {
        let mut x = 0u32;
        b.iter(|| {
            x = (x + 7) % 101;
            f.eval(Fraction::clamped(x as f64 / 100.0))
        })
    });

    let scenario = scenarios::realistic_2();
    let registry = ImpactRegistry::from_scenario(
        (0..64).map(|i| {
            let cat = match i % 3 {
                0 => WorkloadCategory::SoftwareRedundant,
                1 => WorkloadCategory::CapAble,
                _ => WorkloadCategory::NonCapAble,
            };
            (DeploymentId(i), cat)
        }),
        &scenario,
    );
    c.bench_function("impact/registry-lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 64;
            registry.impact(DeploymentId(i), WorkloadCategory::CapAble, i % 20, 20)
        })
    });
}

criterion_group!(benches, bench_impact);
criterion_main!(benches);
