//! Criterion: `flex-obs` instrumentation overhead.
//!
//! Two questions decide whether the control path can afford to keep
//! observability on in every run:
//!
//! 1. How close to free is the **noop** handle? Every hot-path call
//!    site pays this even in uninstrumented builds, so it must compile
//!    down to a branch on `None`.
//! 2. What does a **recording** handle cost per counter bump, span
//!    sample, and flight event? These bound the instrumented campaign
//!    overhead that `scripts/perf_smoke.sh` holds under 15%.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::obs::{FlightEvent, Obs};
use flex_core::sim::{SimDuration, SimTime};

fn bench_handles(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    for (label, obs) in [("noop", Obs::noop()), ("recording", Obs::recording())] {
        let counter = obs.counter("bench/items");
        group.bench_with_input(BenchmarkId::new("counter-inc", label), &(), |b, ()| {
            b.iter(|| counter.inc())
        });

        let hist = obs.histogram("bench/sizes");
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("histogram-observe", label), &(), |b, ()| {
            b.iter(|| {
                i = i.wrapping_add(2_654_435_761);
                hist.observe(i >> 32)
            })
        });

        let span = obs.span("bench/latency");
        let mut j = 0u64;
        group.bench_with_input(BenchmarkId::new("span-record", label), &(), |b, ()| {
            b.iter(|| {
                j += 1;
                span.record(SimDuration::from_nanos(j % 1_000_000))
            })
        });

        let mut t = 0u64;
        group.bench_with_input(BenchmarkId::new("record-event", label), &(), |b, ()| {
            b.iter(|| {
                t += 1;
                obs.record_with(SimTime::from_nanos(t), || FlightEvent::WatchdogTick {
                    controller: 0,
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_handles);
criterion_main!(benches);
