//! Criterion: wall-clock cost of each placement policy on the paper's
//! 9.6 MW room (the Flex-Offline variants are dominated by LNS + ILP).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::placement::ilp::IlpConfig;
use flex_core::placement::policies::{
    BalancedRoundRobin, FirstFit, FlexOffline, PlacementPolicy, Random,
};
use flex_core::placement::RoomConfig;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_policies(c: &mut Criterion) {
    let room = RoomConfig::paper_placement_room().build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power());
    let trace = TraceGenerator::new(config).generate(&mut SmallRng::seed_from_u64(1));
    let fast_ilp = IlpConfig {
        time_limit: Duration::from_millis(500),
        ..IlpConfig::default()
    };

    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("policy", "random"), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            Random.place(&room, &trace, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("policy", "first-fit"), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            FirstFit.place(&room, &trace, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("policy", "balanced-round-robin"), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            BalancedRoundRobin.place(&room, &trace, &mut rng)
        })
    });
    group.bench_function(BenchmarkId::new("policy", "flex-offline-short"), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            FlexOffline::short()
                .with_config(fast_ilp.clone())
                .place(&room, &trace, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
