//! Criterion: simplex and branch-and-bound scaling on knapsack-shaped
//! models (the Gurobi stand-in's core loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::milp::simplex::solve_relaxation;
use flex_core::milp::{Model, Relation, Sense, SolveConfig};

fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(format!("x{i}"), ((i * 37 + 11) % 50 + 1) as f64))
        .collect();
    m.add_constraint(
        "cap",
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 53 + 7) % 30 + 1) as f64)),
        Relation::Le,
        (4 * n) as f64,
    )
    .unwrap();
    // A few side constraints to mimic the placement structure.
    for k in 0..6 {
        m.add_constraint(
            format!("side{k}"),
            vars.iter()
                .enumerate()
                .filter(|(i, _)| i % 6 == k)
                .map(|(_, &v)| (v, 1.0)),
            Relation::Le,
            (n / 8).max(1) as f64,
        )
        .unwrap();
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp/lp-relaxation");
    for n in [30usize, 60, 120, 240] {
        let m = knapsack(n);
        let bounds: Vec<(f64, f64)> = (0..m.var_count()).map(|_| (0.0, 1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solve_relaxation(&m, &bounds).unwrap())
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp/branch-and-bound");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let m = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.solve(&SolveConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_branch_and_bound);
criterion_main!(benches);
