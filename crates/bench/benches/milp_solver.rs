//! Criterion: simplex and branch-and-bound scaling on knapsack-shaped
//! models (the Gurobi stand-in's core loop).

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::milp::simplex::solve_relaxation;
use flex_core::milp::{Model, Relation, Sense, SolveConfig};

fn knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(format!("x{i}"), ((i * 37 + 11) % 50 + 1) as f64))
        .collect();
    m.add_constraint(
        "cap",
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 53 + 7) % 30 + 1) as f64)),
        Relation::Le,
        (4 * n) as f64,
    )
    .unwrap();
    // A few side constraints to mimic the placement structure.
    for k in 0..6 {
        m.add_constraint(
            format!("side{k}"),
            vars.iter()
                .enumerate()
                .filter(|(i, _)| i % 6 == k)
                .map(|(_, &v)| (v, 1.0)),
            Relation::Le,
            (n / 8).max(1) as f64,
        )
        .unwrap();
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp/lp-relaxation");
    for n in [30usize, 60, 120, 240] {
        let m = knapsack(n);
        let bounds: Vec<(f64, f64)> = (0..m.var_count()).map(|_| (0.0, 1.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solve_relaxation(&m, &bounds).unwrap())
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp/branch-and-bound");
    group.sample_size(10);
    for n in [20usize, 40, 80] {
        let m = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.solve(&SolveConfig::default()).unwrap())
        });
    }
    group.finish();
}

/// A placement-shaped instance: `deps × pairs` assignment binaries,
/// one at-most-one row per deployment and one capacity row per PDU
/// pair — the structure `flex-placement` hands the solver, at the
/// paper's batch scale (~200 binaries for 40 deployments × 5 pairs).
fn placement_like(deps: usize, pairs: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let power: Vec<f64> = (0..deps).map(|d| ((d * 37 + 11) % 50 + 10) as f64).collect();
    let x: Vec<Vec<_>> = (0..deps)
        .map(|d| {
            (0..pairs)
                .map(|p| m.add_binary(format!("x{d}_{p}"), power[d]))
                .collect()
        })
        .collect();
    for (d, row) in x.iter().enumerate() {
        m.add_constraint(
            format!("assign{d}"),
            row.iter().map(|&v| (v, 1.0)),
            Relation::Le,
            1.0,
        )
        .unwrap();
    }
    // Pair capacity sized so ~80% of total power fits: the solver has to
    // choose what to strand, like a tight placement batch.
    let total: f64 = power.iter().sum();
    let cap = total * 0.8 / pairs as f64;
    for p in 0..pairs {
        m.add_constraint(
            format!("cap{p}"),
            (0..deps).map(|d| (x[d][p], power[d])),
            Relation::Le,
            cap,
        )
        .unwrap();
    }
    m
}

/// Threads × warm-start matrix on the ~200-binary placement-shaped
/// instance, plus a one-shot nodes/sec report per configuration. The
/// node budget (not the wall clock) bounds each solve so configurations
/// do comparable work and throughput is the comparable number.
fn bench_thread_matrix(c: &mut Criterion) {
    let m = placement_like(40, 5);
    let make_cfg = |threads: usize, warm_lp: bool| SolveConfig {
        threads,
        warm_lp,
        max_nodes: 2_000,
        time_limit: Duration::from_secs(30),
        ..SolveConfig::default()
    };

    let mut group = c.benchmark_group("milp/threads-warm-200bin");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        for &warm_lp in &[false, true] {
            let cfg = make_cfg(threads, warm_lp);
            let label = if warm_lp { "warm" } else { "cold" };
            group.bench_with_input(BenchmarkId::new(label, threads), &cfg, |b, cfg| {
                b.iter(|| m.solve(cfg).unwrap())
            });
        }
    }
    group.finish();

    println!("\nmilp/threads-warm-200bin node throughput:");
    for &threads in &[1usize, 2, 4] {
        for &warm_lp in &[false, true] {
            let cfg = make_cfg(threads, warm_lp);
            let start = Instant::now();
            let sol = m.solve(&cfg).unwrap();
            let secs = start.elapsed().as_secs_f64();
            println!(
                "  threads={threads} warm={warm_lp}: {:.0} nodes/s \
                 (nodes={} lp_iters={} warm={} cold={} objective={:.1} in {:.3}s)",
                sol.nodes_explored as f64 / secs.max(1e-9),
                sol.nodes_explored,
                sol.lp_iterations,
                sol.warm_starts,
                sol.cold_starts,
                sol.objective,
                secs,
            );
        }
    }
}

criterion_group!(benches, bench_simplex, bench_branch_and_bound, bench_thread_matrix);
criterion_main!(benches);
