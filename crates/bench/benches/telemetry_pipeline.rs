//! Criterion: telemetry pipeline tick cost (4 UPSes with 3-way
//! consensus, plus rack snapshots at room scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::power::meter::GroundTruth;
use flex_core::power::{FeedState, LoadModel, Topology, Watts};
use flex_core::sim::rng::RngPool;
use flex_core::sim::SimTime;
use flex_core::telemetry::{Pipeline, PipelineConfig};

fn bench_pipeline(c: &mut Criterion) {
    let topo = Topology::distributed_redundant(4, Watts::from_mw(2.4)).unwrap();
    let mut load = LoadModel::new(&topo);
    for p in topo.pdu_pairs() {
        load.set_pair_load(p.id(), Watts::from_kw(1200.0));
    }
    let truth = GroundTruth::capture(&load, &FeedState::all_online(&topo));

    let mut group = c.benchmark_group("telemetry");
    group.bench_function("ups-poll-tick", |b| {
        let mut pipeline = Pipeline::new(PipelineConfig::production(), 4, 0, &RngPool::new(1));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            pipeline.poll_upses(SimTime::from_nanos(i * 1_500_000_000), &truth)
        })
    });
    for racks in [120usize, 360, 600] {
        let rack_truth = vec![Watts::from_kw(13.0); racks];
        group.bench_with_input(
            BenchmarkId::new("rack-poll-tick", racks),
            &racks,
            |b, _| {
                let mut pipeline =
                    Pipeline::new(PipelineConfig::production(), 4, racks, &RngPool::new(1));
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    pipeline.poll_racks(SimTime::from_nanos(i * 2_000_000_000), &rack_truth)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
