//! Criterion: Algorithm 1 decision latency — the software half of the
//! 10-second end-to-end budget. Measured on the 360-rack emulation room
//! and the 600-rack placement room at failover utilizations.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::online::policy::{decide, DecisionInput, PolicyConfig};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{BalancedRoundRobin, PlacementPolicy};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::{FeedState, Fraction, UpsId, Watts};
use flex_core::workload::impact::scenarios;
use flex_core::workload::power_model::RackPowerModel;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn setup(room_config: RoomConfig) -> (PlacedRoom, Vec<Watts>, Vec<Watts>, ImpactRegistry) {
    let room = room_config.build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(9);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    let placement = BalancedRoundRobin.place(&room, &trace, &mut rng);
    let placed = PlacedRoom::materialize(&room, &trace, &placement);
    let provisioned: Vec<Watts> = placed.racks().iter().map(|r| r.provisioned).collect();
    let draws = RackPowerModel::default_microsoft().sample_room_at_utilization(
        &provisioned,
        Fraction::clamped(0.85),
        &mut rng,
    );
    let topo = placed.room().topology().clone();
    let feed = FeedState::with_failed(&topo, [UpsId(0)]);
    let loads = placed.ups_loads(&draws, &feed);
    let ups_power: Vec<Watts> = topo.ups_ids().into_iter().map(|u| loads.load(u)).collect();
    let registry = ImpactRegistry::from_scenario(
        placed.racks().iter().map(|r| (r.deployment, r.category)),
        &scenarios::realistic_1(),
    );
    (placed, draws, ups_power, registry)
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1/decide");
    for (label, room) in [
        ("360-rack-room", RoomConfig::paper_emulation_room()),
        ("600-rack-room", RoomConfig::paper_placement_room()),
    ] {
        let (placed, draws, ups_power, registry) = setup(room);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let input = DecisionInput {
                    topology: placed.room().topology(),
                    racks: placed.racks(),
                    rack_power: &draws,
                    ups_power: &ups_power,
                };
                let outcome = decide(
                    &input,
                    &BTreeMap::new(),
                    &registry,
                    &PolicyConfig::default(),
                )
                .expect("well-formed snapshot");
                assert!(outcome.safe);
                outcome
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
