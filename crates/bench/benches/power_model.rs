//! Criterion: the electrical substrate — failover load transfer and
//! cascade stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::power::cascade::CascadeSim;
use flex_core::power::trip_curve::TripCurve;
use flex_core::power::{FeedState, LoadModel, Topology, UpsId, Watts};

fn loaded_model(x: usize) -> LoadModel {
    let topo = Topology::distributed_redundant(x, Watts::from_mw(2.4)).unwrap();
    let mut load = LoadModel::new(&topo);
    for p in topo.pdu_pairs() {
        load.set_pair_load(p.id(), Watts::from_kw(1500.0));
    }
    load
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("power/ups-loads");
    for x in [4usize, 6] {
        let model = loaded_model(x);
        let topo = model.topology().clone();
        let feed = FeedState::with_failed(&topo, [UpsId(0)]);
        group.bench_with_input(BenchmarkId::from_parameter(x), &x, |b, _| {
            b.iter(|| model.ups_loads(&feed))
        });
    }
    group.finish();
}

fn bench_cascade(c: &mut Criterion) {
    c.bench_function("power/cascade-100-steps", |b| {
        b.iter(|| {
            let mut sim = CascadeSim::new(loaded_model(4), TripCurve::end_of_life(), 60.0);
            sim.fail_ups(UpsId(0)).unwrap();
            sim.run(10.0, 0.1, |_, _| {})
        })
    });
}

criterion_group!(benches, bench_transfer, bench_cascade);
criterion_main!(benches);
