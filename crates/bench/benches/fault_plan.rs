//! Criterion: `FaultPlan` hot-path queries.
//!
//! `is_up` runs per poller × component × tick inside every telemetry
//! and chaos simulation, so it must stay a binary search over merged
//! windows. The name-formatting benchmark documents why callers cache
//! component names (see `flex_sim::fault::names`) instead of formatting
//! them per query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flex_core::sim::fault::{names, FaultPlan};
use flex_core::sim::SimTime;

fn build_plan(components: usize, windows_per: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for c in 0..components {
        let name = names::rack_manager(c);
        for w in 0..windows_per {
            let base = (w * 20) as f64;
            plan.add_outage(
                &name,
                SimTime::from_secs_f64(base + 1.0),
                SimTime::from_secs_f64(base + 6.0),
            );
        }
    }
    plan
}

fn bench_fault_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_plan");
    for &(components, windows) in &[(8usize, 4usize), (64, 16), (512, 32)] {
        let plan = build_plan(components, windows);
        let cached: Vec<String> = (0..components).map(names::rack_manager).collect();
        group.bench_with_input(
            BenchmarkId::new("is_up", format!("{components}c-{windows}w")),
            &plan,
            |b, plan| {
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let t = SimTime::from_nanos(i.wrapping_mul(7_919) % 700_000_000_000);
                    let name = &cached[(i as usize) % cached.len()];
                    plan.is_up(name, t)
                })
            },
        );
    }
    group.bench_function("build-512c-32w", |b| b.iter(|| build_plan(512, 32)));
    group.bench_function("name-format-per-query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            names::rack_manager(i % 512)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_plan);
criterion_main!(benches);
