//! §VI "financial incentives": the differentiated charge model that
//! passes Flex's construction savings to workloads accepting corrective
//! actions.

use flex_core::analysis::pricing::ChargeModel;
use flex_core::workload::WorkloadCategory;

fn main() {
    let model = ChargeModel::paper_like();
    println!("Differentiated pricing (§VI) — base ${:.2}/W-month, 50% savings pass-through\n",
        model.base_price_per_watt_month);
    println!("{:<22} {:>12} {:>16}", "category", "multiplier", "$/W-month");
    for category in WorkloadCategory::ALL {
        println!(
            "{:<22} {:>12.3} {:>15.3}",
            category.label(),
            model.price_multiplier(category),
            model.price_per_watt_month(category)
        );
    }
    let revenue = model.relative_revenue([0.13, 0.56, 0.31], 1.0 / 3.0);
    println!(
        "\nprovider revenue vs a conventional room (Microsoft mix, +33% capacity): {:+.1}%",
        (revenue - 1.0) * 100.0
    );
    println!("discounted prices attract flexible workloads; the extra sellable capacity");
    println!("more than covers the discounts — the incentive structure §VI describes.");
}
