//! Figure 11 (and Figure 8): the impact-function scenario library.
//!
//! Prints each scenario's software-redundant and cap-able impact curves
//! so the Figure 12 decisions can be read against them.

use flex_core::power::Fraction;
use flex_core::workload::impact::{scenarios, ImpactFunction};

fn curve_row(f: &ImpactFunction) -> String {
    (0..=10)
        .map(|i| {
            let x = Fraction::clamped(i as f64 / 10.0);
            format!("{:>5.2}", f.eval(x))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("Figure 11 — impact scenarios (impact at affected-rack fraction 0%..100% in 10% steps)\n");
    println!(
        "{:<14} {:<10} {}",
        "scenario",
        "workload",
        (0..=10)
            .map(|i| format!("{:>5}", format!("{}%", i * 10)))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for s in scenarios::all() {
        println!("{:<14} {:<10} {}", s.name, "SR", curve_row(&s.software_redundant));
        println!("{:<14} {:<10} {}", "", "cap-able", curve_row(&s.cap_able));
    }
    println!("\nFigure 8 examples:");
    println!("{:<14} {:<10} {}", "fig8(A)", "cap-able", curve_row(&scenarios::figure8_a()));
    println!("{:<14} {:<10} {}", "fig8(B)", "SR", curve_row(&scenarios::figure8_b()));
    println!("{:<14} {:<10} {}", "fig8(C)", "SR", curve_row(&scenarios::figure8_c()));
    println!("\nreading: 0 = act freely, 1 = critical (touch only if vital for safety).");
}
