//! Section V-A, "Impact of software-redundant workloads": sweep the
//! software-redundant power share with non-cap-able fixed at 31%.
//!
//! Paper (Flex-Offline-Long): 0% SR → 15% median stranded; 5% → 4%;
//! 10% → 3%; larger shares within ±1% of that.

use flex_bench::{median, study_ilp_config, trace_count};
use flex_core::placement::metrics::stranded_fraction;
use flex_core::placement::policies::{replay, FlexOffline, PlacementPolicy};
use flex_core::placement::RoomConfig;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let room = RoomConfig::paper_placement_room()
        .build()
        .expect("paper room builds");
    let n = trace_count();
    println!(
        "Software-redundant share sweep — Flex-Offline-Long over {n} traces\n\
         (non-cap-able fixed at 31%; cap-able takes the remainder)\n"
    );
    println!("{:<10} {:>22}", "SR share", "median stranded power");
    for sr in [0.0, 0.05, 0.10, 0.15, 0.20] {
        let mix = [sr, 1.0 - 0.31 - sr, 0.31];
        let config = TraceConfig::microsoft(room.provisioned_power()).with_category_mix(mix);
        let mut stranded = Vec::new();
        for s in 0..n {
            let mut rng = SmallRng::seed_from_u64(0x5123 + s as u64);
            let trace = TraceGenerator::new(config.clone()).generate(&mut rng);
            let placement = FlexOffline::long()
                .with_config(study_ilp_config())
                .place(&room, &trace, &mut rng);
            let state = replay(&room, &trace, &placement);
            stranded.push(stranded_fraction(&state));
        }
        println!("{:<10.0}% {:>21.2}%", sr * 100.0, median(&stranded) * 100.0);
    }
    println!("\npaper: 0% → 15%, 5% → 4%, 10% → 3%, then flat within ±1%");
}
