//! Ablation: forecast-aware placement (the paper's §V-A future work,
//! implemented). Short batches plus discounted phantom demand sampled
//! from the demand *distribution* should close part of the gap between
//! Flex-Offline-Short and the full-visibility Oracle — without peeking
//! at the actual future.

use flex_bench::{median, paper_room_and_trace, study_ilp_config, trace_count};
use flex_core::placement::forecast::ForecastAware;
use flex_core::placement::metrics::{stranded_fraction, throttling_imbalance};
use flex_core::placement::policies::{replay, FlexOffline, PlacementPolicy};
use flex_core::workload::trace::TraceConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (room, base) = paper_room_and_trace(2026);
    let n = trace_count().min(5);
    let ilp = study_ilp_config();
    let forecast_model = TraceConfig::microsoft(room.provisioned_power());

    println!("Forecast-aware placement ablation over {n} shuffled traces\n");
    println!(
        "{:<24} {:>18} {:>22}",
        "policy", "median stranded", "median imbalance"
    );
    let run = |name: &str,
                   place: &dyn Fn(
        &flex_core::workload::trace::DemandTrace,
        &mut SmallRng,
    ) -> flex_core::placement::Placement| {
        let mut stranded = Vec::new();
        let mut imbalance = Vec::new();
        for s in 0..n {
            let mut rng = SmallRng::seed_from_u64(0xF0C + s as u64);
            let trace = base.shuffled(&mut rng);
            let placement = place(&trace, &mut rng);
            let state = replay(&room, &trace, &placement);
            stranded.push(stranded_fraction(&state));
            imbalance.push(throttling_imbalance(&state));
        }
        println!(
            "{name:<24} {:>17.2}% {:>22.3}",
            median(&stranded) * 100.0,
            median(&imbalance)
        );
    };

    let room_ref = &room;
    let short = {
        let ilp = ilp.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            FlexOffline::short().with_config(ilp.clone()).place(room_ref, t, rng)
        }
    };
    run("Flex-Offline-Short", &short);
    let forecast = {
        let ilp = ilp.clone();
        let model = forecast_model.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            ForecastAware::short(model.clone())
                .with_config(ilp.clone())
                .place(room_ref, t, rng)
        }
    };
    run("Flex-Offline-Forecast", &forecast);
    let oracle = {
        let ilp = ilp.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            FlexOffline::oracle().with_config(ilp.clone()).place(room_ref, t, rng)
        }
    };
    run("Flex-Offline-Oracle", &oracle);
    println!(
        "\nthe forecast policy sees only the demand *distribution*, not the actual\n\
         future trace; any gap it closes toward the Oracle is honest lookahead value."
    );
}
