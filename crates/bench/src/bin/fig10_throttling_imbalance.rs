//! Figure 10: throttling imbalance by placement policy.
//!
//! Paper: Balanced Round-Robin beats Random; Flex-Offline improves
//! further with horizon; -Long only slightly above -Oracle.

use flex_bench::{paper_room_and_trace, print_box_row, run_placement_study, trace_count};

fn main() {
    let (room, trace) = paper_room_and_trace(2026);
    let n = trace_count();
    println!(
        "Figure 10 — throttling imbalance (max−min worst-case throttling need,\n\
         as a fraction of UPS capacity) over {n} shuffled traces\n"
    );
    let study = run_placement_study(&room, &trace, n);
    for s in &study {
        print_box_row(&s.name, &s.imbalance, 1.0, " ");
    }
    println!("\npaper ordering: Random > Balanced Round-Robin > Short > Long ≳ Oracle");
}
