//! Figure 1: traditional oversubscription vs Flex — and their
//! combination.
//!
//! Oversubscription deploys more servers under the *failover budget* by
//! exploiting sub-peak average draws (with capping on rare coincident
//! peaks); Flex additionally allocates the *reserved* power. The paper
//! notes they are orthogonal and multiply.

use flex_core::analysis::oversubscription::OversubscriptionModel;
use flex_core::power::{Topology, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::distributed_redundant(4, Watts::from_mw(2.4))?;
    let budget_racks = 450; // failover budget at 16 kW/rack (7.2 MW)
    let model = OversubscriptionModel::paper_like();
    println!("Figure 1 — oversubscription vs zero reserved power (4N/3, 9.6 MW provisioned)\n");
    println!(
        "per-rack draws: mean {:.0}% ± {:.0}% of provisioned; overload risk ε = 1e-4\n",
        model.mean_utilization * 100.0,
        model.std_utilization * 100.0
    );
    let oversub_ratio = model.ratio(budget_racks, 1e-4);
    let flex_ratio = 1.0 + topo.extra_server_fraction();
    let rows: Vec<(&str, f64)> = vec![
        ("conventional (budget only)", 1.0),
        ("+ oversubscription", oversub_ratio),
        ("+ Flex (zero reserved power)", flex_ratio),
        ("+ both (multiplied)", oversub_ratio * flex_ratio),
    ];
    println!("{:<32} {:>10} {:>14}", "strategy", "servers", "vs baseline");
    for (name, ratio) in rows {
        println!(
            "{name:<32} {:>10.0} {:>+13.1}%",
            budget_racks as f64 * ratio,
            (ratio - 1.0) * 100.0
        );
    }
    println!(
        "\npaper: oversubscription keeps the peak under the failover budget;\n\
         Flex allocates the reserve itself (+33% for 4N/3); combined they stack."
    );
    Ok(())
}
