//! Figure 13: end-to-end Flex-Online run on the emulated 4.8 MW room —
//! UPS/rack power through setup, normal operation, failover, and
//! recovery.
//!
//! Paper: load stabilizes ~80%; a UPS failure at minute 12 spikes the
//! survivors above 1.2 MW; the controller sheds (64% of
//! software-redundant racks shut down, 51% of cap-able throttled) in ~2 s
//! of enforcement; p95 latency of throttled racks +4.7% mean / +14%
//! worst; restoration brings everything back.

use flex_core::emulation::{run, EmulationConfig};
use flex_core::sim::SimDuration;
use flex_core::sim::SimTime;

fn main() {
    let config = EmulationConfig {
        ilp_placement: !flex_bench::fast_mode(),
        ..EmulationConfig::default()
    };
    let fail_at = SimTime::ZERO + config.fail_at;
    let restore_at = SimTime::ZERO + config.restore_at;
    println!("Figure 13 — end-to-end emulation (4.8 MW room, 360 racks, 80% utilization)\n");
    let report = run(config);

    // Stage-annotated UPS series, sampled every 30 s.
    println!("per-UPS load fraction (columns: UPS0..UPS3; '-' = out of service):");
    let end = report.stages.end;
    let mut t = SimTime::ZERO;
    while t <= end {
        let mut row = format!("  t={:>5.0}s ", t.as_secs_f64());
        for s in &report.ups_fraction {
            match s.value_at(t) {
                Some(v) if v > 0.02 => row.push_str(&format!(" {v:>5.2}")),
                _ => row.push_str("     -"),
            }
        }
        if t == fail_at {
            row.push_str("   <- UPS0 fails (C)");
        }
        if t == restore_at {
            row.push_str("   <- UPS0 restored (F)");
        }
        println!("{row}");
        t = t + SimDuration::from_secs(30);
    }

    println!("\nkey metrics vs paper:");
    println!(
        "  software-redundant racks shut down: {:>5.1}%   (paper: 64%)",
        report.sr_shutdown_fraction * 100.0
    );
    println!(
        "  cap-able racks throttled:           {:>5.1}%   (paper: 51%)",
        report.capable_throttled_fraction * 100.0
    );
    if let Some(d) = report.detection_latency {
        println!("  failure -> first command:           {d}   (paper e2e: ~3.5 s p99.9, budget 10 s)");
    }
    if let Some(d) = report.enforcement_duration {
        println!("  enforcement burst duration:         {d}   (paper: ~2 s)");
    }
    println!(
        "  p95 latency inflation (throttled):  +{:.1}% mean, +{:.1}% worst (paper: +4.7% / +14%)",
        report.mean_p95_inflation * 100.0,
        report.worst_p95_inflation * 100.0
    );
    println!(
        "  cascaded: {}   fully recovered: {}",
        report.cascaded, report.fully_recovered
    );
}
