//! Sections I–II: server-count increase and construction-cost savings.
//!
//! Paper: Flex deploys up to 33% more servers per 4N/3 datacenter,
//! saving $211M ($5/W) to $422M ($10/W) per 128 MW site.

use flex_core::analysis::cost::CostModel;
use flex_core::power::{Topology, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Cost savings — zero reserved power vs conventional\n");
    println!("server-count increase by redundancy design:");
    for x in [3usize, 4, 5, 6] {
        let topo = Topology::distributed_redundant(x, Watts::from_mw(2.4))?;
        println!(
            "  {x}N/{}: reserve {:.0}% of provisioned -> +{:.0}% servers",
            x - 1,
            topo.reserved_power() / topo.provisioned_power() * 100.0,
            topo.extra_server_fraction() * 100.0
        );
    }

    println!("\nconstruction savings per 128 MW site (4N/3):");
    println!(
        "{:<10} {:>16} {:>30}",
        "$/W", "headline", "with 4% stranding + 3% upgrades"
    );
    for dollars in [5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
        let ideal = CostModel::paper_site(dollars);
        let realistic = CostModel {
            stranded_fraction: 0.04,
            upgrade_cost_fraction: 0.03,
            ..ideal
        };
        println!(
            "{:<10} {:>13.0} M$ {:>27.0} M$",
            dollars,
            ideal.construction_savings() / 1e6,
            realistic.construction_savings() / 1e6
        );
    }
    println!("\npaper: $211M at $5/W and $422M at $10/W (headline arithmetic).");
    Ok(())
}
