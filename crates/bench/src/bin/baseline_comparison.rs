//! Reserve utilization: Flex vs the CapMaestro-like baseline vs a
//! conventional reserved-power room.
//!
//! Paper (§I, §VII): CapMaestro is the only prior system that deploys
//! servers into the reserve, but without availability awareness it
//! "limits the amount of reserved power that can be used"; Flex can use
//! the entire reserve.

use flex_bench::{study_ilp_config, trace_count};
use flex_core::placement::policies::{replay, Baseline, FlexOffline, PlacementPolicy};
use flex_core::placement::RoomConfig;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let room = RoomConfig::paper_placement_room()
        .build()
        .expect("room builds");
    let config = TraceConfig::microsoft(room.provisioned_power());
    let base = TraceGenerator::new(config).generate(&mut SmallRng::seed_from_u64(2026));
    let n = trace_count().min(5);
    let budget = room.failover_budget();
    let reserve = room.provisioned_power() - budget;

    println!("Reserve utilization by system (mean over {n} shuffled traces, 9.6 MW room)\n");
    println!(
        "{:<32} {:>14} {:>18} {:>14}",
        "system", "allocated", "% of reserve used", "extra servers"
    );
    let evaluate = |name: &str,
                        place: &dyn Fn(
        &flex_core::workload::trace::DemandTrace,
        &mut SmallRng,
    ) -> flex_core::placement::Placement| {
        let mut allocated_sum = flex_core::power::Watts::ZERO;
        for s in 0..n {
            let mut rng = SmallRng::seed_from_u64(0xBA5E + s as u64);
            let trace = base.shuffled(&mut rng);
            let placement = place(&trace, &mut rng);
            let state = replay(&room, &trace, &placement);
            allocated_sum += state.total_allocated();
        }
        let allocated = allocated_sum * (1.0 / n as f64);
        let reserve_used = ((allocated - budget) / reserve).max(0.0);
        let extra = (allocated / budget - 1.0).max(0.0);
        println!(
            "{name:<32} {:>11.2} MW {:>17.0}% {:>+13.1}%",
            allocated.as_mw(),
            reserve_used * 100.0,
            extra * 100.0
        );
    };

    let ilp = study_ilp_config();
    let room_ref = &room;
    let conventional = {
        let ilp = ilp.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            Baseline::conventional().with_config(ilp.clone()).place(room_ref, t, rng)
        }
    };
    evaluate("Conventional (reserved power)", &conventional);
    let capmaestro = {
        let ilp = ilp.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            Baseline::cap_maestro_like().with_config(ilp.clone()).place(room_ref, t, rng)
        }
    };
    evaluate("CapMaestro-like (no shutdowns)", &capmaestro);
    let flex = {
        let ilp = ilp.clone();
        move |t: &flex_core::workload::trace::DemandTrace, rng: &mut SmallRng| {
            FlexOffline::short().with_config(ilp.clone()).place(room_ref, t, rng)
        }
    };
    evaluate("Flex-Offline-Short", &flex);

    println!(
        "\npaper: the conventional room cannot touch the {} reserve; CapMaestro-like\n\
         uses part of it (throttling only); Flex uses essentially all of it.",
        reserve
    );
}
