//! Section V-A, "Impact of deployment sizes": cap the largest deployment
//! at 20/10/5 racks and re-run Flex-Offline-Short.
//!
//! Paper: capping at 10 racks roughly halves Flex-Offline-Short's median
//! stranded power and throttling imbalance versus 20-rack deployments.

use flex_bench::{median, paper_room_and_trace, study_ilp_config, trace_count};
use flex_core::placement::metrics::{stranded_fraction, throttling_imbalance};
use flex_core::placement::policies::{replay, FlexOffline, PlacementPolicy};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (room, base) = paper_room_and_trace(2026);
    let n = trace_count();
    println!(
        "Deployment-size sweep — Flex-Offline-Short over {n} shuffled traces\n\
         (larger deployments are split into chunks of at most `max racks`)\n"
    );
    println!(
        "{:<12} {:>22} {:>24}",
        "max racks", "median stranded power", "median throttling imbal."
    );
    for max_racks in [20usize, 10, 5] {
        let capped = base.split_max_racks(max_racks);
        let mut stranded = Vec::new();
        let mut imbalance = Vec::new();
        for s in 0..n {
            let mut rng = SmallRng::seed_from_u64(0xDE9 + s as u64);
            let trace = capped.shuffled(&mut rng);
            let placement = FlexOffline::short()
                .with_config(study_ilp_config())
                .place(&room, &trace, &mut rng);
            let state = replay(&room, &trace, &placement);
            stranded.push(stranded_fraction(&state));
            imbalance.push(throttling_imbalance(&state));
        }
        println!(
            "{:<12} {:>21.2}% {:>24.3}",
            max_racks,
            median(&stranded) * 100.0,
            median(&imbalance)
        );
    }
    println!("\npaper: max 10 racks ≈ half the stranded power and imbalance of max 20");
}
