//! Ablation (§II-A): why distributed redundancy is key for Flex.
//!
//! N+1 cannot host Flex at all (the backup supply is passive — no
//! servers can be attached to it). 2N works electrically but a failover
//! doubles the survivor's load, far beyond any overload tolerance. The
//! xN/(x−1) distributed designs keep the worst-case transfer at
//! x/(x−1), inside the battery ride-through window.

use flex_bench::study_ilp_config;
use flex_core::placement::metrics::stranded_fraction;
use flex_core::placement::policies::{replay, FlexOffline, PlacementPolicy};
use flex_core::placement::RoomConfig;
use flex_core::power::trip_curve::TripCurve;
use flex_core::power::Watts;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let curve = TripCurve::end_of_life();
    println!("Redundancy-design ablation — 9.6 MW provisioned, Microsoft mix, Flex-Offline-Short\n");
    println!(
        "{:<8} {:>16} {:>18} {:>20} {:>16}",
        "design", "reserve freed", "worst failover", "overload tolerance", "stranded (Flex)"
    );
    for x in [2usize, 3, 4, 6] {
        let ups_capacity = Watts::from_mw(9.6 / x as f64);
        let room = RoomConfig {
            ups_count: x,
            ups_capacity,
            rows: 60,
            racks_per_row: 10,
            cooling_cfm_per_slot: 2_500.0,
            pdu_pair_capacity: None,
        }
        .build()
        .expect("room builds");
        let worst = x as f64 / (x as f64 - 1.0);
        let tolerance = curve
            .tolerance(worst)
            .map(|t| format!("{t:.1} s"))
            .unwrap_or_else(|| "∞".into());
        let config = TraceConfig::microsoft(room.provisioned_power());
        let mut rng = SmallRng::seed_from_u64(2026);
        let trace = TraceGenerator::new(config).generate(&mut rng);
        let placement = FlexOffline::short()
            .with_config(study_ilp_config())
            .place(&room, &trace, &mut rng);
        let state = replay(&room, &trace, &placement);
        println!(
            "{:<8} {:>15.0}% {:>17.0}% {:>20} {:>15.2}%",
            format!("{x}N/{}", x - 1),
            room.topology().reserved_power() / room.provisioned_power() * 100.0,
            worst * 100.0,
            tolerance,
            stranded_fraction(&state) * 100.0,
        );
    }
    println!(
        "\n2N frees the most reserve but its 200% failover gives well under a second of\n\
         tolerance — no software can react. 4N/3's 133% with ~10 s is the paper's sweet\n\
         spot; wider designs free less reserve for diminishing returns. N+1 (passive\n\
         backup) is not representable: no servers can attach to the reserve at all."
    );
}
