//! Section III: feasibility analysis — how often would Flex actually
//! throttle or shut anything down?
//!
//! Paper: ≥ 4 nines of operation without corrective actions;
//! P(software-redundant server shut down) ≈ 0.005%; software-redundant
//! availability ≥ 4 nines, non-redundant 5 nines.

use flex_core::analysis::feasibility::{simulate_years, FeasibilityModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let model = FeasibilityModel::paper();
    println!("Section III — feasibility analysis\n");
    println!("inputs:");
    println!(
        "  unplanned supply loss {} h/yr; planned {} h/yr (scheduled into dips)",
        model.unplanned_hours_per_year, model.planned_hours_per_year
    );
    println!(
        "  utilization profile: weekday peak {:.0}%, night/weekend dip to {:.0}%",
        model.profile.peak() * 100.0,
        (model.profile.peak() - 0.17) * 100.0
    );
    println!(
        "  corrective actions needed above {:.0}% utilization; shutdowns above {:.0}%\n",
        model.action_threshold * 100.0,
        model.shutdown_threshold * 100.0
    );

    println!("closed form:");
    println!(
        "  time with utilization above action threshold: {:.1}% of the week",
        model.time_fraction_above(model.action_threshold) * 100.0
    );
    let avail = model.no_action_availability();
    println!(
        "  operation without corrective actions: {:.6}% = {:.1} nines (paper: ≥ 4 nines)",
        avail * 100.0,
        FeasibilityModel::nines(avail)
    );
    let p = model.shutdown_probability();
    println!(
        "  P(software-redundant server shut down): {:.5}% (paper: ~0.005%)",
        p * 100.0
    );
    println!(
        "  software-redundant availability: {:.1} nines (paper: ≥ 4 nines)",
        FeasibilityModel::nines(model.software_redundant_availability())
    );
    println!("  non-redundant workloads: never shut down — datacenter-design 5 nines, throttling only\n");

    let years = if flex_bench::fast_mode() { 50 } else { 1000 };
    let mut rng = SmallRng::seed_from_u64(3);
    let mc = simulate_years(&model, years, &mut rng);
    println!("Monte-Carlo over {years} operation-years (0.1 h steps):");
    println!(
        "  unplanned downtime drawn: {:.2} h/yr; planned performed: {:.1} h/yr (all in dips)",
        mc.unplanned_hours / years as f64,
        mc.planned_hours / years as f64
    );
    println!(
        "  time needing corrective action: {:.5}% ({:.1} nines without)",
        mc.action_fraction() * 100.0,
        FeasibilityModel::nines(1.0 - mc.action_fraction())
    );
    println!(
        "  time with software-redundant shutdowns: {:.5}%",
        mc.shutdown_fraction() * 100.0
    );
}
