//! Figure 3: workload-category distribution across four regions.
//!
//! Paper: a significant share of deployed capacity in every region is
//! software-redundant or cap-able, averaging 13% / 56% / 31%.

use flex_core::workload::mix::{average_mix, microsoft_regions};
use flex_core::workload::WorkloadCategory;

fn main() {
    println!("Figure 3 — workload distribution across regions (share of deployed power)\n");
    println!(
        "{:<10} {:>20} {:>12} {:>14}",
        "region", "software-redundant", "cap-able", "non-cap-able"
    );
    let regions = microsoft_regions();
    for r in &regions {
        println!(
            "{:<10} {:>19.0}% {:>11.0}% {:>13.0}%",
            r.region,
            r.share(WorkloadCategory::SoftwareRedundant).value() * 100.0,
            r.share(WorkloadCategory::CapAble).value() * 100.0,
            r.share(WorkloadCategory::NonCapAble).value() * 100.0,
        );
    }
    let avg = average_mix(&regions);
    println!(
        "{:<10} {:>19.0}% {:>11.0}% {:>13.0}%   (paper: 13% / 56% / 31%)",
        "average",
        avg[0] * 100.0,
        avg[1] * 100.0,
        avg[2] * 100.0
    );
    println!("\nimplication: {:.0}% of capacity tolerates Flex's corrective actions on average.",
        (avg[0] + avg[1]) * 100.0);
}
