//! Figure 6: UPS overload tolerance curves at the beginning and end of
//! battery life.
//!
//! Paper: at the worst-case 4N/3 failover load of 133%, the end-of-life
//! curve gives 10 seconds of tolerance, plus 3.5 minutes of ride-through
//! at 100% while generators start — hence Flex-Online's 10 s end-to-end
//! budget.

use flex_core::power::trip_curve::TripCurve;

fn main() {
    let bol = TripCurve::beginning_of_life();
    let eol = TripCurve::end_of_life();
    println!("Figure 6 — UPS overload tolerance (seconds at sustained load)\n");
    println!(
        "{:<12} {:>18} {:>18}",
        "load (%)", "begin of life (s)", "end of life (s)"
    );
    for load in [102, 105, 110, 115, 120, 125, 133, 140, 150, 175, 200] {
        let f = load as f64 / 100.0;
        let fmt = |c: &TripCurve| match c.tolerance(f) {
            Some(t) => format!("{t:.1}"),
            None => "∞".to_string(),
        };
        let marker = if load == 133 {
            "   <- worst-case 4N/3 failover"
        } else {
            ""
        };
        println!("{load:<12} {:>18} {:>18}{marker}", fmt(&bol), fmt(&eol));
    }
    println!(
        "\nride-through at 100% load while generators start: {:.1} min (paper: 3.5 min)",
        eol.ride_through_secs() / 60.0
    );
    println!(
        "end-of-life tolerance at 133%: {:.1} s — Flex-Online's end-to-end budget (paper: 10 s)",
        eol.tolerance(4.0 / 3.0).expect("133% is an overload")
    );
}
