//! Figure 12: Flex-Online's runtime decisions during a failover, by
//! impact scenario and room utilization.
//!
//! For each scenario and utilization in the paper's 74–85% band, fail
//! each UPS in turn and report mean ± std of (a) impacted racks as % of
//! all racks, (b) shutdowns as % of shut-down-able racks, (c) throttles
//! as % of throttle-able racks.
//!
//! Paper: up to 30–40% of racks impacted only at the highest
//! utilizations; Extreme-1 impacts the fewest racks (shutdowns recover
//! the most) and throttles the fewest; Extreme-2 throttles everything
//! before shutting anything down; Realistic-1 shuts down more /
//! throttles less than Realistic-2.

use std::collections::BTreeMap;

use flex_core::online::policy::{decide, ActionSummary, DecisionInput, PolicyConfig};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{FlexOffline, PlacementPolicy};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::{FeedState, Fraction, Watts};
use flex_core::sim::stats::OnlineStats;
use flex_core::workload::impact::scenarios;
use flex_core::workload::power_model::RackPowerModel;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use flex_bench::study_ilp_config;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Placement from Flex-Offline-Short, as in the paper's methodology.
    let room = RoomConfig::paper_placement_room()
        .build()
        .expect("room builds");
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(0xF16);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    let placement = FlexOffline::short()
        .with_config(study_ilp_config())
        .place(&room, &trace, &mut rng);
    let placed = PlacedRoom::materialize(&room, &trace, &placement);
    let topo = placed.room().topology().clone();
    let provisioned: Vec<Watts> = placed.racks().iter().map(|r| r.provisioned).collect();
    let model = RackPowerModel::default_microsoft();

    println!("Figure 12 — runtime decisions during a failover (mean ± std across all UPS failures)\n");
    for scenario in scenarios::all() {
        let registry = ImpactRegistry::from_scenario(
            placed.racks().iter().map(|r| (r.deployment, r.category)),
            &scenario,
        );
        println!("scenario {}:", scenario.name);
        println!(
            "  {:<6} {:>20} {:>20} {:>20}",
            "util", "impacted (% all)", "shut down (% SR)", "throttled (% cap)"
        );
        for util in [0.74, 0.76, 0.78, 0.80, 0.82, 0.85] {
            let mut impacted = OnlineStats::new();
            let mut shut = OnlineStats::new();
            let mut throttled = OnlineStats::new();
            for failed in topo.ups_ids() {
                let mut draw_rng = SmallRng::seed_from_u64(0xD0_u64 + (util * 1000.0) as u64);
                let draws = model.sample_room_at_utilization(
                    &provisioned,
                    Fraction::clamped(util),
                    &mut draw_rng,
                );
                let feed = FeedState::with_failed(&topo, [failed]);
                let loads = placed.ups_loads(&draws, &feed);
                let ups_power: Vec<Watts> =
                    topo.ups_ids().into_iter().map(|u| loads.load(u)).collect();
                let input = DecisionInput {
                    topology: &topo,
                    racks: placed.racks(),
                    rack_power: &draws,
                    ups_power: &ups_power,
                };
                let outcome =
                    decide(&input, &BTreeMap::new(), &registry, &PolicyConfig::default())
                        .expect("decision failed");
                assert!(outcome.safe, "{}: unsafe at {util}", scenario.name);
                let s = ActionSummary::compute(&outcome.actions, placed.racks());
                impacted.record(s.impacted_fraction * 100.0);
                shut.record(s.shutdown_fraction * 100.0);
                throttled.record(s.throttled_fraction * 100.0);
            }
            println!(
                "  {:<6.0}% {:>12.1} ± {:>4.1} {:>12.1} ± {:>4.1} {:>12.1} ± {:>4.1}",
                util * 100.0,
                impacted.mean(),
                impacted.population_std_dev(),
                shut.mean(),
                shut.population_std_dev(),
                throttled.mean(),
                throttled.population_std_dev(),
            );
        }
        println!();
    }
    println!("paper: ≤30–40% impacted only at the top of the band; Extreme-1 fewest impacted");
    println!("racks and fewest throttles; Extreme-2 throttles all candidates before any shutdown.");
}
