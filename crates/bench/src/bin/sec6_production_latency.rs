//! Section VI performance characteristics: data latency, action latency,
//! and end-to-end detection across repeated failover episodes, with and
//! without telemetry component faults.
//!
//! Paper (production): p99.9 data latency < 1.5 s; action latency ~2 s
//! p99.9 for a ~10 MW room; end-to-end 3.5 s ≪ the 10 s device budget.

use flex_core::online::sim::{DemandFn, RoomSim, RoomSimConfig};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{BalancedRoundRobin, PlacementPolicy};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::meter::GroundTruth;
use flex_core::power::{FeedState, LoadModel, UpsId, Watts};
use flex_core::sim::rng::RngPool;
use flex_core::sim::stats::Percentiles;
use flex_core::sim::{SimDuration, SimTime};
use flex_core::telemetry::{Pipeline, PipelineConfig};
use flex_core::workload::impact::scenarios;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn data_latency_study() {
    // Drive the pipeline alone for many ticks and report data latency.
    let room = RoomConfig::paper_placement_room().build().expect("room");
    let topo = room.topology().clone();
    let mut load = LoadModel::new(&topo);
    for p in topo.pdu_pairs() {
        load.set_pair_load(p.id(), Watts::from_kw(1200.0));
    }
    let truth = GroundTruth::capture(&load, &FeedState::all_online(&topo));
    let mut pipeline = Pipeline::new(
        PipelineConfig::production(),
        topo.ups_count(),
        600,
        &RngPool::new(61),
    );
    let ticks = if flex_bench::fast_mode() { 2_000 } else { 20_000 };
    for i in 0..ticks {
        let now = SimTime::from_secs_f64(1.5 * i as f64);
        let _ = pipeline.poll_upses(now, &truth);
    }
    let stats = pipeline.data_latency_stats();
    let (p50, p95, p99, p999) = stats.summary().expect("latencies recorded");
    println!("data latency (meter -> subscriber, {ticks} poll ticks):");
    println!("  p50 {p50:.3}s  p95 {p95:.3}s  p99 {p99:.3}s  p99.9 {p999:.3}s   (paper: p99.9 < 1.5 s)");
}

fn end_to_end_study(label: &str, episodes: usize, fault_pollers: bool) {
    let mut detection = Percentiles::new();
    let mut action = Percentiles::new();
    let mut containment = Percentiles::new();
    for ep in 0..episodes {
        let room = RoomConfig::paper_emulation_room().build().expect("room");
        let config = TraceConfig::microsoft(room.provisioned_power());
        let mut rng = SmallRng::seed_from_u64(1000 + ep as u64);
        let trace = TraceGenerator::new(config).generate(&mut rng);
        let placement = BalancedRoundRobin.place(&room, &trace, &mut rng);
        let placed = PlacedRoom::materialize(&room, &trace, &placement);
        let registry = ImpactRegistry::from_scenario(
            placed.racks().iter().map(|r| (r.deployment, r.category)),
            &scenarios::realistic_1(),
        );
        let demand: DemandFn =
            Box::new(|rack, _, rng: &mut SmallRng| rack.provisioned * rng.gen_range(0.76..0.86));
        let sim_config = RoomSimConfig {
            seed: 7000 + ep as u64,
            ..RoomSimConfig::default()
        };
        let mut sim = RoomSim::new(&placed, registry, demand, sim_config);
        if fault_pollers {
            let mut plan = flex_core::sim::fault::FaultPlan::new();
            plan.add_outage("poller/0", SimTime::ZERO, SimTime::from_secs_f64(1e7));
            plan.add_outage("pubsub/1", SimTime::ZERO, SimTime::from_secs_f64(1e7));
            sim.world_mut().set_pipeline_fault_plan(plan);
        }
        let ups = UpsId((ep % 4) as usize);
        sim.fail_ups_at(SimTime::from_secs_f64(20.0), ups);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        let w = sim.world();
        assert!(!w.stats.cascaded(), "episode {ep} cascaded");
        // Only measure detection when the failover actually produced an
        // overdraw emergency (survivor above the buffered limit within
        // 5 s); low-draw episodes have nothing to detect.
        let fail_t = SimTime::from_secs_f64(20.0);
        let emergency = w.stats.ups_fraction.iter().any(|s| {
            s.max_over(fail_t, fail_t + SimDuration::from_secs(5))
                .unwrap_or(0.0)
                > 0.98
        });
        if emergency {
            if let Some(d) = w.stats.detection_latency.first() {
                detection.record(d.as_secs_f64());
            }
        }
        // Failure -> first enforcement (the paper's "latency to take
        // corrective actions").
        if emergency {
            if let Some(first) = w
                .stats
                .events
                .iter()
                .filter_map(|(at, e)| match e {
                    flex_core::online::sim::SimEvent::Applied { .. } => Some(at.as_secs_f64()),
                    _ => None,
                })
                .find(|&t| t >= 20.0)
            {
                action.record(first - 20.0);
            }
        }
        // Failure -> containment: first instant every surviving UPS is
        // back at or under rated capacity.
        let contained = (21..60).find(|&sec| {
            w.stats
                .ups_fraction
                .iter()
                .all(|s| s.value_at(SimTime::from_secs_f64(sec as f64)).unwrap_or(0.0) <= 1.0)
        });
        if let Some(sec) = contained {
            containment.record(sec as f64 - 20.0);
        }
    }
    let (d50, d95, d99, d999) = detection.summary().expect("detections recorded");
    println!("\n{label} ({episodes} failover episodes):");
    println!("  failure -> first command:     p50 {d50:.2}s  p95 {d95:.2}s  p99 {d99:.2}s  p99.9 {d999:.2}s");
    if let Some((a50, a95, _, a999)) = action.summary() {
        println!(
            "  failure -> first enforcement: p50 {a50:.2}s  p95 {a95:.2}s  p99.9 {a999:.2}s   (paper e2e: 3.5 s p99.9)"
        );
    }
    if let Some((c50, c95, _, c999)) = containment.summary() {
        println!(
            "  failure -> containment:       p50 {c50:.0}s  p95 {c95:.0}s  p99.9 {c999:.0}s   (budget: 10 s, 1 s sampling)"
        );
    }
}

/// Ablation: 3-logical-meter consensus vs a single meter, under the
/// paper's observed stuck-meter behavior (readings repeat for up to 5 s).
fn consensus_ablation() {
    use flex_core::power::meter::MeterKind;
    use flex_core::telemetry::{MeterBank, MeterFaults};

    let faults = MeterFaults {
        noise_rel: 0.004,
        stuck_probability: 0.02, // exaggerated to make the effect visible
        stuck_duration: SimDuration::from_secs(5),
        drop_probability: 0.005,
    };
    let mut bank = MeterBank::new(1, 0, faults, &RngPool::new(99));
    let ups = UpsId(0);
    let n = 20_000;
    let mut single_bad = 0usize;
    let mut consensus_bad = 0usize;
    for i in 0..n {
        let now = SimTime::from_secs_f64(1.5 * i as f64);
        // Truth ramps so a stuck meter is actually wrong.
        let truth = Watts::from_kw(1_000.0 + 300.0 * ((i as f64 / 40.0).sin()));
        let mut normalized = Vec::new();
        for kind in MeterKind::ALL {
            if let Some(raw) = bank.read_ups(ups, kind, now, truth) {
                normalized.push(kind.normalize(raw).as_kw());
            }
        }
        let tolerance = (truth * 0.02).as_kw();
        if let Some(&first) = normalized.first() {
            if (first - truth.as_kw()).abs() > tolerance {
                single_bad += 1;
            }
        }
        if !normalized.is_empty() {
            normalized.sort_by(f64::total_cmp);
            let median = normalized[normalized.len() / 2];
            if (median - truth.as_kw()).abs() > tolerance {
                consensus_bad += 1;
            }
        }
    }
    println!("\nmeter-consensus ablation (2% stuck probability, ±2% error threshold):");
    println!(
        "  single meter wrong: {:.2}% of readings; 3-meter consensus wrong: {:.2}%",
        single_bad as f64 / n as f64 * 100.0,
        consensus_bad as f64 / n as f64 * 100.0
    );
    println!("  consensus masks any one failed/stuck/misreading meter (Section IV-C).");
}

fn main() {
    println!("Section VI — performance characteristics\n");
    data_latency_study();
    consensus_ablation();
    let episodes = if flex_bench::fast_mode() { 4 } else { 24 };
    end_to_end_study("end-to-end, healthy pipeline", episodes, false);
    end_to_end_study(
        "end-to-end, one poller and one pub/sub down",
        episodes,
        true,
    );
}
