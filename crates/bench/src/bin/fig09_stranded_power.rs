//! Figure 9: stranded power by placement policy, box-plotted over
//! shuffled demand traces.
//!
//! Paper: all policies < 10%; Random worst; Balanced Round-Robin better;
//! Flex-Offline-Short −27% median vs BRR; -Long same median, narrower
//! spread; -Oracle < 2%.

use flex_bench::{median, paper_room_and_trace, print_box_row, run_placement_study, trace_count};

fn main() {
    let (room, trace) = paper_room_and_trace(2026);
    let n = trace_count();
    println!(
        "Figure 9 — stranded power (% of provisioned) over {n} shuffled traces, 9.6 MW 4N/3 room\n"
    );
    let study = run_placement_study(&room, &trace, n);
    for s in &study {
        print_box_row(&s.name, &s.stranded, 100.0, "%");
    }
    let brr = study
        .iter()
        .find(|s| s.name == "Balanced Round-Robin")
        .expect("study includes BRR");
    let short = study
        .iter()
        .find(|s| s.name == "Flex-Offline-Short")
        .expect("study includes Short");
    let oracle = study
        .iter()
        .find(|s| s.name == "Flex-Offline-Oracle")
        .expect("study includes Oracle");
    println!(
        "\nmedian reduction Flex-Offline-Short vs Balanced Round-Robin: {:.0}%  (paper: 27%)",
        (1.0 - median(&short.stranded) / median(&brr.stranded)) * 100.0
    );
    println!(
        "Flex-Offline-Oracle median: {:.2}%  (paper: < 2%)",
        median(&oracle.stranded) * 100.0
    );
}
