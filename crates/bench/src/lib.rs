//! Shared harness code for the per-figure experiment binaries.
//!
//! Every binary prints the rows/series the paper's corresponding figure
//! or table reports, plus the paper's numbers for comparison. Absolute
//! values depend on the simulated substrate; the *shape* (orderings,
//! rough factors, crossovers) is what reproduces.
//!
//! Environment knobs:
//! - `FLEX_BENCH_TRACES` — number of shuffled traces for the placement
//!   studies (default 10, as in the paper);
//! - `FLEX_BENCH_FAST` — set to `1` to cut solver time limits for smoke
//!   runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use flex_core::placement::ilp::IlpConfig;
use flex_core::placement::metrics::{stranded_fraction, throttling_imbalance, BoxStats};
use flex_core::placement::policies::{
    replay, BalancedRoundRobin, FlexOffline, PlacementPolicy, Random,
};
use flex_core::placement::{Room, RoomConfig};
use flex_core::workload::trace::{DemandTrace, TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Number of shuffled traces to evaluate (paper: 10).
pub fn trace_count() -> usize {
    std::env::var("FLEX_BENCH_TRACES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Whether to run with reduced solver budgets.
pub fn fast_mode() -> bool {
    std::env::var("FLEX_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// The ILP configuration for the study binaries.
pub fn study_ilp_config() -> IlpConfig {
    IlpConfig {
        time_limit: if fast_mode() {
            Duration::from_secs(1)
        } else {
            Duration::from_secs(8)
        },
        ..IlpConfig::default()
    }
}

/// Per-policy per-trace metric values.
pub struct PolicyStudy {
    /// Policy display name.
    pub name: String,
    /// Stranded-power fraction per trace.
    pub stranded: Vec<f64>,
    /// Throttling imbalance per trace.
    pub imbalance: Vec<f64>,
}

/// Runs the Section V-A placement study: the given base trace shuffled
/// `n` times, placed by every policy; returns both Figure 9 and Figure
/// 10 metrics.
pub fn run_placement_study(room: &Room, base: &DemandTrace, n: usize) -> Vec<PolicyStudy> {
    let ilp = study_ilp_config();
    let policies: Vec<(String, Box<dyn Fn(&DemandTrace, &mut SmallRng) -> flex_core::placement::Placement>)> = vec![
        (
            "Random".into(),
            Box::new(|t, rng| Random.place(room, t, rng)),
        ),
        (
            "Balanced Round-Robin".into(),
            Box::new(|t, rng| BalancedRoundRobin.place(room, t, rng)),
        ),
        (
            "Flex-Offline-Short".into(),
            Box::new({
                let ilp = ilp.clone();
                move |t, rng| FlexOffline::short().with_config(ilp.clone()).place(room, t, rng)
            }),
        ),
        (
            "Flex-Offline-Long".into(),
            Box::new({
                let ilp = ilp.clone();
                move |t, rng| FlexOffline::long().with_config(ilp.clone()).place(room, t, rng)
            }),
        ),
        (
            "Flex-Offline-Oracle".into(),
            Box::new({
                let ilp = ilp.clone();
                move |t, rng| FlexOffline::oracle().with_config(ilp.clone()).place(room, t, rng)
            }),
        ),
    ];

    let mut out = Vec::new();
    for (name, place) in policies {
        let mut stranded = Vec::with_capacity(n);
        let mut imbalance = Vec::with_capacity(n);
        for s in 0..n {
            let mut rng = SmallRng::seed_from_u64(0x51AB + s as u64);
            let trace = base.shuffled(&mut rng);
            let placement = place(&trace, &mut rng);
            let state = replay(room, &trace, &placement);
            debug_assert!(state.verify_safety(trace.deployments()).is_empty());
            stranded.push(stranded_fraction(&state));
            imbalance.push(throttling_imbalance(&state));
        }
        out.push(PolicyStudy {
            name,
            stranded,
            imbalance,
        });
    }
    out
}

/// Builds the paper's 9.6 MW placement room and its base demand trace.
pub fn paper_room_and_trace(seed: u64) -> (Room, DemandTrace) {
    let room = RoomConfig::paper_placement_room()
        .build()
        .expect("paper room builds");
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(seed);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    (room, trace)
}

/// Prints a five-number summary row.
pub fn print_box_row(label: &str, values: &[f64], scale: f64, unit: &str) {
    let b = BoxStats::from_values(values);
    println!(
        "{label:<22} min {:>6.2}{unit}  p25 {:>6.2}{unit}  median {:>6.2}{unit}  p75 {:>6.2}{unit}  max {:>6.2}{unit}",
        b.min * scale,
        b.p25 * scale,
        b.median * scale,
        b.p75 * scale,
        b.max * scale,
    );
}

/// Median helper for report lines.
pub fn median(values: &[f64]) -> f64 {
    BoxStats::from_values(values).median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_smoke_runs_with_one_trace() {
        std::env::set_var("FLEX_BENCH_FAST", "1");
        let (room, trace) = paper_room_and_trace(3);
        let study = run_placement_study(&room, &trace, 1);
        assert_eq!(study.len(), 5);
        for s in &study {
            assert_eq!(s.stranded.len(), 1);
            assert!(s.stranded[0] >= 0.0 && s.stranded[0] <= 1.0);
            assert!(s.imbalance[0] >= 0.0);
        }
        std::env::remove_var("FLEX_BENCH_FAST");
    }

    #[test]
    fn env_knobs_parse() {
        std::env::set_var("FLEX_BENCH_TRACES", "4");
        assert_eq!(trace_count(), 4);
        std::env::remove_var("FLEX_BENCH_TRACES");
        assert_eq!(trace_count(), 10);
    }
}
