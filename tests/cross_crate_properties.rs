//! Property-based tests spanning crates: random traces, random
//! utilizations, random failovers — safety invariants must hold.

use std::collections::BTreeMap;

use flex_core::online::policy::{decide, DecisionInput, PolicyConfig};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{replay, BalancedRoundRobin, PlacementPolicy, Random};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::{FeedState, Fraction, Watts};
use flex_core::workload::impact::scenarios;
use flex_core::workload::power_model::RackPowerModel;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn placed(seed: u64, use_random_policy: bool, mix: [f64; 3]) -> PlacedRoom {
    let room = RoomConfig::paper_placement_room().build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power()).with_category_mix(mix);
    let mut rng = SmallRng::seed_from_u64(seed);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    let placement = if use_random_policy {
        Random.place(&room, &trace, &mut rng)
    } else {
        BalancedRoundRobin.place(&room, &trace, &mut rng)
    };
    let state = replay(&room, &trace, &placement);
    assert!(state.verify_safety(trace.deployments()).is_empty());
    PlacedRoom::materialize(&room, &trace, &placement)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any accepted placement, any utilization, any single failover,
    /// Algorithm 1 finds a safe action set whose projections respect
    /// capacity, and never double-acts a rack.
    #[test]
    fn online_safety_holds_for_random_inputs(
        seed in 0u64..10_000,
        util in 0.70f64..1.0,
        failed_idx in 0usize..4,
        use_random in proptest::bool::ANY,
        scenario_idx in 0usize..4,
    ) {
        let placed = placed(seed, use_random, [0.13, 0.56, 0.31]);
        let topo = placed.room().topology().clone();
        let provisioned: Vec<Watts> = placed.racks().iter().map(|r| r.provisioned).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x55);
        let draws = RackPowerModel::default_microsoft().sample_room_at_utilization(
            &provisioned,
            Fraction::clamped(util),
            &mut rng,
        );
        let failed = topo.ups_ids()[failed_idx];
        let feed = FeedState::with_failed(&topo, [failed]);
        let loads = placed.ups_loads(&draws, &feed);
        let ups_power: Vec<Watts> = topo.ups_ids().into_iter().map(|u| loads.load(u)).collect();
        let scenario = &scenarios::all()[scenario_idx];
        let registry = ImpactRegistry::from_scenario(
            placed.racks().iter().map(|r| (r.deployment, r.category)),
            scenario,
        );
        let input = DecisionInput {
            topology: &topo,
            racks: placed.racks(),
            rack_power: &draws,
            ups_power: &ups_power,
        };
        let outcome = decide(&input, &BTreeMap::new(), &registry, &PolicyConfig::default()).unwrap();
        prop_assert!(outcome.safe, "unsafe at util {util} failing {failed}");
        // No duplicate racks.
        let mut seen = std::collections::HashSet::new();
        for a in &outcome.actions {
            prop_assert!(seen.insert(a.rack), "rack {} acted twice", a.rack);
            let cat = placed.racks()[a.rack.0].category;
            prop_assert!(cat.is_actionable());
        }
        // Projections within capacity on survivors.
        for u in topo.upses() {
            if u.id() != failed {
                prop_assert!(!outcome.projected_ups_power[u.id().0].exceeds(u.capacity()));
            }
        }
        // Estimated recoveries are positive and bounded by rack draws.
        for a in &outcome.actions {
            prop_assert!(a.estimated_recovery.as_w() > 0.0);
            prop_assert!(a.estimated_recovery <= draws[a.rack.0] + Watts::new(1e-6));
        }
    }

    /// Placement accounting: for any seed and mix, every deployment is
    /// either assigned once or rejected, and rack materialization
    /// matches the accepted deployments exactly.
    #[test]
    fn placement_accounting_is_exact(
        seed in 0u64..10_000,
        sr_share in 0.0f64..0.3,
    ) {
        let cap = (1.0 - 0.31 - sr_share).max(0.0);
        let mix = [sr_share, cap, 1.0 - sr_share - cap];
        let room = RoomConfig::paper_placement_room().build().unwrap();
        let config = TraceConfig::microsoft(room.provisioned_power()).with_category_mix(mix);
        let mut rng = SmallRng::seed_from_u64(seed);
        let trace = TraceGenerator::new(config).generate(&mut rng);
        let placement = BalancedRoundRobin.place(&room, &trace, &mut rng);
        prop_assert_eq!(
            placement.assignments.len() + placement.rejected.len(),
            trace.len()
        );
        // No deployment appears twice.
        let mut ids: Vec<_> = placement.assignments.iter().map(|(d, _)| *d).collect();
        ids.extend(placement.rejected.iter().copied());
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate deployment handling");
        // Materialized racks match accepted deployments.
        let placed = PlacedRoom::materialize(&room, &trace, &placement);
        let expected: usize = placement
            .assignments
            .iter()
            .map(|(d, _)| {
                trace
                    .deployments()
                    .iter()
                    .find(|x| x.id() == *d)
                    .unwrap()
                    .racks()
            })
            .sum();
        prop_assert_eq!(placed.rack_count(), expected);
    }
}
