//! Cross-crate integration: the offline → online contract.
//!
//! The core promise of Flex is that *any* placement accepted by
//! Flex-Offline can be kept safe by Flex-Online under *any* single-UPS
//! failover, at any utilization up to 100%. These tests exercise that
//! contract end to end across the placement, workload, power, and online
//! crates.

use std::collections::BTreeMap;

use flex_core::online::policy::{decide, DecisionInput, PolicyConfig};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{
    replay, BalancedRoundRobin, FlexOffline, PlacementPolicy, Random,
};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::{FeedState, Fraction, Watts};
use flex_core::workload::impact::scenarios;
use flex_core::workload::power_model::RackPowerModel;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn placed_room(seed: u64, policy: &str) -> PlacedRoom {
    let room = RoomConfig::paper_placement_room().build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(seed);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    let placement = match policy {
        "random" => Random.place(&room, &trace, &mut rng),
        "brr" => BalancedRoundRobin.place(&room, &trace, &mut rng),
        "flex" => FlexOffline::short().place(&room, &trace, &mut rng),
        other => panic!("unknown policy {other}"),
    };
    // Every policy must produce a provably safe placement.
    let state = replay(&room, &trace, &placement);
    assert!(
        state.verify_safety(trace.deployments()).is_empty(),
        "{policy} produced an unsafe placement"
    );
    PlacedRoom::materialize(&room, &trace, &placement)
}

/// The offline→online safety contract: worst-case utilization, every
/// failover, every policy, every scenario — Algorithm 1 always finds a
/// safe action set.
#[test]
fn any_placement_any_failover_is_recoverable() {
    for policy in ["random", "brr"] {
        let placed = placed_room(0xA11CE, policy);
        let topo = placed.room().topology().clone();
        // Worst case: every rack at its full provisioned power.
        let draws: Vec<Watts> = placed.racks().iter().map(|r| r.provisioned).collect();
        for scenario in scenarios::all() {
            let registry = ImpactRegistry::from_scenario(
                placed.racks().iter().map(|r| (r.deployment, r.category)),
                &scenario,
            );
            for failed in topo.ups_ids() {
                let feed = FeedState::with_failed(&topo, [failed]);
                let loads = placed.ups_loads(&draws, &feed);
                let ups_power: Vec<Watts> =
                    topo.ups_ids().into_iter().map(|u| loads.load(u)).collect();
                let input = DecisionInput {
                    topology: &topo,
                    racks: placed.racks(),
                    rack_power: &draws,
                    ups_power: &ups_power,
                };
                let outcome = decide(
                    &input,
                    &BTreeMap::new(),
                    &registry,
                    &PolicyConfig::default(),
                )
                .unwrap();
                assert!(
                    outcome.safe,
                    "{policy}/{}: failover of {failed} unrecoverable at 100% utilization",
                    scenario.name
                );
                // Projected loads actually sit below capacity.
                for u in topo.upses() {
                    if u.id() != failed {
                        assert!(
                            !outcome.projected_ups_power[u.id().0].exceeds(u.capacity()),
                            "{policy}/{}: {} projected above capacity",
                            scenario.name,
                            u.id()
                        );
                    }
                }
            }
        }
    }
}

/// Flex-Offline's ILP placement reproduces the contract too, and beats
/// the baselines on stranded power for the same trace.
#[test]
fn flex_offline_contract_and_quality() {
    let room = RoomConfig::paper_placement_room().build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let trace = TraceGenerator::new(config).generate(&mut rng);

    let flex = FlexOffline::short().place(&room, &trace, &mut rng);
    let random = Random.place(&room, &trace, &mut rng);
    let s_flex = replay(&room, &trace, &flex);
    let s_random = replay(&room, &trace, &random);
    assert!(s_flex.verify_safety(trace.deployments()).is_empty());
    let flex_stranded = s_flex.stranded_power() / room.provisioned_power();
    let random_stranded = s_random.stranded_power() / room.provisioned_power();
    assert!(
        flex_stranded <= random_stranded + 1e-9,
        "flex {flex_stranded} vs random {random_stranded}"
    );
    assert!(flex_stranded < 0.08, "flex stranded {flex_stranded}");
}

/// Realistic utilizations (the paper's 74–85% band): actions scale with
/// utilization and never touch non-cap-able racks.
#[test]
fn action_counts_scale_with_utilization() {
    let placed = placed_room(0xCAFE, "brr");
    let topo = placed.room().topology().clone();
    let registry = ImpactRegistry::from_scenario(
        placed.racks().iter().map(|r| (r.deployment, r.category)),
        &scenarios::realistic_2(),
    );
    let provisioned: Vec<Watts> = placed.racks().iter().map(|r| r.provisioned).collect();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut prev = 0usize;
    for util in [0.74, 0.78, 0.82, 0.86] {
        let draws = RackPowerModel::default_microsoft().sample_room_at_utilization(
            &provisioned,
            Fraction::clamped(util),
            &mut rng,
        );
        let failed = topo.ups_ids()[0];
        let feed = FeedState::with_failed(&topo, [failed]);
        let loads = placed.ups_loads(&draws, &feed);
        let ups_power: Vec<Watts> = topo.ups_ids().into_iter().map(|u| loads.load(u)).collect();
        let input = DecisionInput {
            topology: &topo,
            racks: placed.racks(),
            rack_power: &draws,
            ups_power: &ups_power,
        };
        let outcome = decide(&input, &BTreeMap::new(), &registry, &PolicyConfig::default()).unwrap();
        assert!(outcome.safe);
        assert!(
            outcome.actions.len() + 3 >= prev,
            "actions should roughly grow with utilization"
        );
        prev = outcome.actions.len();
        for a in &outcome.actions {
            let cat = placed.racks()[a.rack.0].category;
            assert_ne!(
                cat,
                flex_core::workload::WorkloadCategory::NonCapAble,
                "non-cap-able rack touched"
            );
        }
    }
    assert!(prev > 0, "86% utilization failover must require actions");
}

/// The facade ties it together.
#[test]
fn facade_round_trip() {
    let dc = flex_core::FlexDatacenter::builder()
        .policy(flex_core::PolicyKind::BalancedRoundRobin)
        .seed(99)
        .build()
        .unwrap();
    let drill = dc
        .decide_failover(flex_core::power::UpsId(2), 0.9)
        .unwrap();
    assert!(drill.outcome.safe);
    assert!(dc.extra_capacity_fraction() > 0.0);
}
