//! End-to-end timing contract: from scripted UPS failure through
//! telemetry, decision, and actuation, the room must be back inside its
//! limits before the overload accumulators trip — including under
//! telemetry and rack-manager faults (no single point of failure).

use flex_core::online::sim::{DemandFn, RoomSim, RoomSimConfig, SimEvent};
use flex_core::online::ImpactRegistry;
use flex_core::placement::policies::{BalancedRoundRobin, PlacementPolicy};
use flex_core::placement::{PlacedRoom, RoomConfig};
use flex_core::power::UpsId;
use flex_core::sim::fault::FaultPlan;
use flex_core::sim::{SimDuration, SimTime};
use flex_core::workload::impact::scenarios;
use flex_core::workload::trace::{TraceConfig, TraceGenerator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn build(seed: u64, controllers: usize) -> RoomSim {
    let room = RoomConfig::paper_emulation_room().build().unwrap();
    let config = TraceConfig::microsoft(room.provisioned_power());
    let mut rng = SmallRng::seed_from_u64(seed);
    let trace = TraceGenerator::new(config).generate(&mut rng);
    let placement = BalancedRoundRobin.place(&room, &trace, &mut rng);
    let placed = PlacedRoom::materialize(&room, &trace, &placement);
    let registry = ImpactRegistry::from_scenario(
        placed.racks().iter().map(|r| (r.deployment, r.category)),
        &scenarios::realistic_1(),
    );
    let demand: DemandFn =
        Box::new(|rack, _, rng: &mut SmallRng| rack.provisioned * rng.gen_range(0.76..0.86));
    let sim_config = RoomSimConfig {
        controllers,
        ..RoomSimConfig::default()
    };
    RoomSim::new(&placed, registry, demand, sim_config)
}

#[test]
fn failover_contained_within_ups_tolerance() {
    let mut sim = build(1, 3);
    sim.fail_ups_at(SimTime::from_secs_f64(20.0), UpsId(0));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(150));
    let w = sim.world();
    assert!(!w.stats.cascaded(), "events: {:?}", w.stats.events);
    let detect = w.stats.detection_latency[0];
    assert!(
        detect <= SimDuration::from_secs(10),
        "end-to-end detection {detect} blew the 10 s budget"
    );
    // Production-like numbers: ~3.5 s end to end at p99.9 per the
    // paper; our pipeline is configured similarly.
    assert!(detect >= SimDuration::from_millis(200), "suspiciously fast");
}

#[test]
fn single_component_failures_do_not_break_detection() {
    // Knock out one poller, one pub/sub, one switch, and a meter — the
    // pipeline's redundancy must still deliver detection in time.
    let mut sim = build(2, 3);
    let mut plan = FaultPlan::new();
    let forever = SimTime::from_secs_f64(1e7);
    plan.add_outage("poller/0", SimTime::ZERO, forever);
    plan.add_outage("pubsub/1", SimTime::ZERO, forever);
    plan.add_outage("meter/ups1/UpsOutput", SimTime::ZERO, forever);
    sim.world_mut().set_pipeline_fault_plan(plan);
    sim.fail_ups_at(SimTime::from_secs_f64(20.0), UpsId(1));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(150));
    let w = sim.world();
    assert!(!w.stats.cascaded());
    assert!(
        !w.stats.detection_latency.is_empty(),
        "failure must still be detected"
    );
    assert!(w.stats.detection_latency[0] <= SimDuration::from_secs(10));
}

#[test]
fn unreachable_rms_degrade_gracefully() {
    let mut sim = build(3, 3);
    // A third of the rack managers are unreachable: the controllers
    // must work around them (retrying others) and still contain.
    let mut plan = FaultPlan::new();
    let forever = SimTime::from_secs_f64(1e7);
    for rack in (0..360).step_by(3) {
        plan.add_outage(&format!("rm/{rack}"), SimTime::ZERO, forever);
    }
    sim.world_mut().set_actuator_fault_plan(plan);
    sim.fail_ups_at(SimTime::from_secs_f64(20.0), UpsId(2));
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(180));
    let w = sim.world();
    assert!(
        !w.stats.cascaded(),
        "containment must survive 1/3 of RMs being down"
    );
    let applied = w
        .stats
        .count_events(|e| matches!(e, SimEvent::Applied { .. }));
    assert!(applied > 0);
}

#[test]
fn single_controller_is_sufficient_but_slower_or_equal() {
    let mut sim1 = build(4, 1);
    sim1.fail_ups_at(SimTime::from_secs_f64(20.0), UpsId(0));
    sim1.run_until(SimTime::ZERO + SimDuration::from_secs(150));
    assert!(!sim1.world().stats.cascaded());
    let d1 = sim1.world().stats.detection_latency[0];

    let mut sim3 = build(4, 3);
    sim3.fail_ups_at(SimTime::from_secs_f64(20.0), UpsId(0));
    sim3.run_until(SimTime::ZERO + SimDuration::from_secs(150));
    assert!(!sim3.world().stats.cascaded());
    let d3 = sim3.world().stats.detection_latency[0];

    // Multi-primary can only help first-detection latency (same
    // telemetry; more listeners).
    assert!(d3 <= d1 + SimDuration::from_millis(1), "d3 {d3} vs d1 {d1}");
}

#[test]
fn emulation_report_reproduces_figure_13_shape() {
    use flex_core::emulation::{run, EmulationConfig};
    let report = run(EmulationConfig {
        fail_at: SimDuration::from_secs(90),
        restore_at: SimDuration::from_secs(300),
        duration: SimDuration::from_secs(600),
        ..EmulationConfig::default()
    });
    assert!(!report.cascaded);
    assert!(report.fully_recovered);
    assert!(report.sr_shutdown_fraction > 0.2);
    assert!(report.detection_latency.unwrap() <= SimDuration::from_secs(10));
    if let Some(d) = report.enforcement_duration {
        assert!(d <= SimDuration::from_secs(20), "enforcement {d}");
    }
    assert!(report.mean_p95_inflation < 0.25);
}
