//! The lint gate: `cargo test` fails if any error-severity flex-lint
//! finding survives suppression anywhere in the workspace.
//!
//! This is the enforcement half of the analyzer (see DESIGN.md, "The
//! lint gate"): the CLI reports, this test gates.

use std::path::{Path, PathBuf};

use flex_lint::{lint_workspace, LintConfig, Severity};

/// Walks up from the test binary's manifest dir to the workspace root
/// (the directory holding `lint.toml`).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        assert!(
            dir.pop(),
            "no lint.toml found above {}",
            env!("CARGO_MANIFEST_DIR")
        );
    }
}

fn load_config(root: &Path) -> LintConfig {
    LintConfig::load(&root.join("lint.toml")).expect("lint.toml parses")
}

#[test]
fn workspace_has_no_error_severity_findings() {
    let root = workspace_root();
    let config = load_config(&root);
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    let errors: Vec<String> = report
        .errors()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        errors.is_empty(),
        "flex-lint found {} error(s):\n{}\n\nFix the code, or add a justified \
         `// flex-lint: allow(<rule>): <reason>` suppression.",
        errors.len(),
        errors.join("\n")
    );
}

#[test]
fn workspace_lint_covers_the_tree() {
    let root = workspace_root();
    let config = load_config(&root);
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    // Sanity that the gate actually saw the workspace: every crate has
    // at least a lib.rs or main.rs, and the tree holds well over 50
    // Rust files. A collapse here means path handling broke, not code.
    assert!(
        report.files > 50,
        "only {} files linted — workspace walk is broken",
        report.files
    );
}

#[test]
fn every_crate_root_passes_h1() {
    // H1 separately from the aggregate gate, so a header regression
    // names itself even if someone weakens the main assertion.
    let root = workspace_root();
    let config = load_config(&root);
    let report = lint_workspace(&root, &config).expect("workspace walk succeeds");
    let h1: Vec<&flex_lint::Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "H1" && d.severity == Severity::Error)
        .collect();
    assert!(h1.is_empty(), "crate-header violations: {h1:?}");
}
