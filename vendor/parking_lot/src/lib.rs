//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (poisoned locks are recovered —
//! a panicking worker thread already propagates its panic through the
//! scoped-thread join, so recovering the lock does not mask failures).
//! [`Condvar::wait`] takes `&mut MutexGuard`, matching parking_lot's
//! signature, by briefly moving the inner std guard out of the wrapper.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds `Option<std::sync::MutexGuard>` so [`Condvar::wait`] can move the
/// std guard out and back without unsafe code; the option is always `Some`
/// outside of that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable, API-compatible with `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock, API-compatible with `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_notifies_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
