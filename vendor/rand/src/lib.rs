//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, API-compatible implementation: [`Rng`]/[`RngCore`]/
//! [`SeedableRng`] traits and [`rngs::SmallRng`] (xoshiro256++, seeded via
//! SplitMix64 — the same generator family real `rand` 0.8 uses for
//! `SmallRng` on 64-bit targets). Statistical quality is more than
//! adequate for simulation and test workloads; this is not a
//! cryptographic generator.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their "standard" domain
/// (the full integer range; `[0, 1)` for floats; fair coin for `bool`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly over a half-open or inclusive
/// interval. Mirrors rand's `SampleUniform` so range element types
/// drive inference (`v[rng.gen_range(0..n)]` resolves to `usize`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// Multiply-shift reduction of a raw draw onto `[0, span)`.
#[inline]
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 as u64;
                let off = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    reduce(rng.next_u64(), span + 1)
                } else {
                    reduce(rng.next_u64(), span)
                };
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u: $t = StandardSample::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with values from their standard distributions.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for v in dest {
            *v = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG seeded from another RNG.
    fn from_rng<R: RngCore>(mut source: R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(source.next_u64()))
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }

    /// Alias kept for API compatibility.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.85..1.15);
            assert!((0.85..1.15).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&m));
        }
    }

    #[test]
    fn floats_uniform_enough() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
