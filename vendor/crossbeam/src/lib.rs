//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! scoped threads (`crossbeam::thread::scope`) and MPMC channels
//! (`crossbeam::channel`), built on `std::thread::scope` and
//! `std::sync::mpsc`.
//!
//! Semantic differences from real crossbeam, acceptable for in-tree use:
//! a spawned thread whose panic is never joined makes the enclosing
//! `scope` call panic (std behaviour) instead of returning `Err`, and the
//! multi-consumer [`channel::Receiver`] serialises competing receivers
//! through a mutex rather than a lock-free queue.

#![forbid(unsafe_code)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as stdthread;

    /// A scope for spawning borrowed threads; passed to closures by
    /// [`scope`] and to each spawned closure as its argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining returns the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// payload of its panic.
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again so it can spawn siblings, matching crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed threads can be spawned;
    /// all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

/// MPMC channels, mirroring the parts of `crossbeam::channel` used here.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel. Cloneable (multi-consumer): clones
    /// share one underlying queue, each message is delivered once.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn with<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            f(&guard)
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with(|rx| rx.recv())
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with(|rx| rx.try_recv())
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.with(|rx| rx.recv_timeout(timeout))
        }

        /// Drains messages until all senders are gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a "bounded" channel. Capacity is advisory in this stand-in
    /// (the std queue is unbounded); senders never block.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let total = super::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 6);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_multi_consumer_delivers_each_once() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let (a, b) = super::thread::scope(|s| {
            let h1 = s.spawn(move |_| rx.iter().count());
            let h2 = s.spawn(move |_| rx2.iter().count());
            (h1.join().unwrap(), h2.join().unwrap())
        })
        .unwrap();
        assert_eq!(a + b, 100);
    }
}
