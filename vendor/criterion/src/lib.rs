//! Offline stand-in for the subset of the `criterion` harness this
//! workspace uses. Benchmarks genuinely run and are timed (warm-up
//! phase, then a measurement window, mean time per iteration printed),
//! but there is no statistical analysis, no HTML report, and no saved
//! baselines. CLI flags criterion would accept are parsed and honoured
//! where meaningful (`--warm-up-time`, `--measurement-time`, positional
//! filters) or ignored (`--bench`, `--save-baseline`, ...), so
//! `cargo bench` invocations and scripts keep working unchanged.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name, a
/// parameter value, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier consisting only of a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion accepted by `bench_function`: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Filled in by [`Bencher::iter`]: (iterations, elapsed).
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`: warms up for the configured warm-up window, then runs
    /// as many iterations as fit in the measurement window.
    ///
    /// Iterations run in doubling batches so the `Instant` overhead is
    /// negligible even for nanosecond-scale bodies.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch = 1u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            for _ in 0..batch {
                black_box(f());
            }
            if batch < 1 << 20 {
                batch *= 2;
            }
        }

        let mut iters = 0u64;
        let measure_start = Instant::now();
        loop {
            let elapsed = measure_start.elapsed();
            if elapsed >= self.measurement && iters > 0 {
                self.result = Some((iters, elapsed));
                return;
            }
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count. Accepted for API compatibility;
    /// the stand-in sizes runs by wall-clock windows, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets this group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Sets this group's warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (report flushing in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, a stand-in for `criterion::Criterion`.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filters: Vec<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_secs_f64(1.0),
            measurement: Duration::from_secs_f64(2.0),
            filters: Vec::new(),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process CLI arguments, accepting
    /// the flags cargo and the real criterion CLI pass.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--warm-up-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        c.warm_up = Duration::from_secs_f64(v.max(0.0));
                    }
                }
                "--measurement-time" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        c.measurement = Duration::from_secs_f64(v.max(1e-3));
                    }
                }
                // Value-bearing criterion/cargo flags we accept and ignore.
                "--sample-size" | "--save-baseline" | "--baseline" | "--load-baseline"
                | "--output-format" | "--color" | "--significance-level" | "--noise-threshold"
                | "--confidence-level" | "--nresamples" | "--profile-time" => {
                    let _ = args.next();
                }
                // Boolean flags we accept and ignore.
                "--bench" | "--test" | "--list" | "--verbose" | "--quiet" | "--exact"
                | "--discard-baseline" | "--noplot" => {}
                other => {
                    if let Some(v) = other.strip_prefix("--warm-up-time=") {
                        if let Ok(v) = v.parse::<f64>() {
                            c.warm_up = Duration::from_secs_f64(v.max(0.0));
                        }
                    } else if let Some(v) = other.strip_prefix("--measurement-time=") {
                        if let Ok(v) = v.parse::<f64>() {
                            c.measurement = Duration::from_secs_f64(v.max(1e-3));
                        }
                    } else if !other.starts_with('-') {
                        c.filters.push(other.to_string());
                    }
                }
            }
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one top-level benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_id: &str, mut f: F) {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| full_id.contains(p.as_str())) {
            return;
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, elapsed)) => {
                let per_iter = elapsed / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
                println!(
                    "{full_id:<48} time: {:>12}   ({iters} iterations)",
                    format_duration(per_iter),
                );
            }
            None => println!("{full_id:<48} (no measurement — Bencher::iter never called)"),
        }
        self.ran += 1;
    }

    /// Prints the end-of-run summary line.
    pub fn final_summary(&self) {
        println!("criterion stand-in: {} benchmark(s) completed", self.ran);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            filters: Vec::new(),
            ran: 0,
        };
        let mut group = c.benchmark_group("stub");
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0, "benchmark body never ran");
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            filters: vec!["milp".to_string()],
            ran: 0,
        };
        let mut ran_body = false;
        c.bench_function("power/other", |b| {
            ran_body = true;
            b.iter(|| 1)
        });
        assert!(!ran_body);
        assert_eq!(c.ran, 0);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
    }
}
