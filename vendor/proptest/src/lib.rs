//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides value-based random property testing: [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`strategy::Just`], and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, acceptable for in-tree use:
//! no shrinking (failures report the raw generated case), no
//! persistence (`.proptest-regressions` files are ignored), and a
//! fixed deterministic seed per test so failures reproduce across runs.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// The RNG handed to strategies while generating a test case.
pub type TestRng = SmallRng;

/// Core strategy abstraction and combinators.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of type `Value`.
    ///
    /// Value-based (no shrink trees): `sample` draws one case directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Test execution: configuration, case errors, and the runner driving
/// the `proptest!` macro.
pub mod test_runner {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::SeedableRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the test as a whole fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; another is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Creates a rejection with `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Result type of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is meaningful in this
    /// stand-in; the struct is non-exhaustive-by-convention via
    /// `..ProptestConfig::default()` style construction.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Max rejected cases (via `prop_assume!`) before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Fixed base seed so every run generates the same cases (the
    /// stand-in has no shrinking or persistence; determinism is how
    /// failures stay reproducible). Distinct per test via the test
    /// name hashed in [`run`].
    const BASE_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property test: draws cases from `strategy`, applies
    /// `test`, retries rejects, and panics on the first failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::seed_from_u64(BASE_SEED ^ fnv1a(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < config.cases {
            let value = strategy.sample(&mut rng);
            case_index += 1;
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest stand-in: {name}: too many rejected cases \
                             ({rejected}) before reaching {} passes",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!(
                        "proptest stand-in: {name}: case #{case_index} failed: {reason} \
                         (deterministic seed; rerun reproduces this case)"
                    );
                }
            }
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors proptest's macro surface:
/// an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    strategy,
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skips the current case (drawing a replacement) when the
/// precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<f64>)> {
        (2usize..=6).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..10.0, n..=n))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold((n, xs) in arb_pair()) {
            prop_assert_eq!(xs.len(), n);
            for x in &xs {
                prop_assert!((0.0..10.0).contains(x), "x={} out of range", x);
            }
        }

        #[test]
        fn assume_skips(v in 0usize..100, flip in crate::bool::ANY) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0 || flip || !flip);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f64..1.0, 3usize..8);
        let mut a = crate::TestRng::seed_from_u64(9);
        let mut b = crate::TestRng::seed_from_u64(9);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failing_property_panics() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            "failing_property_panics",
            0usize..10,
            |v| {
                prop_assert!(v > 100, "v={} is not > 100", v);
                Ok(())
            },
        );
    }
}
