//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (no
//! serializer crate is in-tree), so the traits are markers and the
//! derives are no-ops. Swap back to real serde by restoring the
//! crates.io entries in the workspace `Cargo.toml` once the build
//! environment has registry access.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
