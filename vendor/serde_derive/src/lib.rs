//! Offline no-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation and
//! future wire formats but never serializes in-tree (no serde_json or
//! similar), so empty derives keep every type compiling without crates.io
//! access. The `serde` attribute is accepted and ignored.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
